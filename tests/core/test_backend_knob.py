"""Backend selection through the SMT facade, strategies, and scheduler.

The ``sat_backend`` knob must flow from ``SMTScheduler`` through
``SearchLimits`` and the shared ``SearchContext`` into the SMT solver's
backend construction — and every backend must certify the same optima,
with the chosen backend recorded on the report.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.strategies import SearchContext, SearchLimits
from repro.core.strategies.portfolio import PortfolioStrategy
from repro.core.validator import validate_schedule
from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES
from repro.smt import Solver
from repro.smt.terms import IntConst

REDUCED = dict(REDUCED_LAYOUT_KWARGS)


def reduced_problem(layout_kind: str, instance: str) -> SchedulingProblem:
    num_qubits, gates = SMT_INSTANCES[instance]
    return SchedulingProblem.from_gates(
        reduced_layout(layout_kind, **REDUCED), num_qubits, gates
    )


# --------------------------------------------------------------------------- #
# SMT facade
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("incremental", [False, True])
def test_smt_solver_on_the_reference_backend(incremental):
    solver = Solver(incremental=incremental, backend="reference")
    assert solver.backend == "reference"
    x = solver.int_var("x", 0, 7)
    solver.add(x + IntConst(2) == 5)
    assert solver.check().is_sat()
    assert solver.model()[x] == 3
    stats = solver.statistics()
    assert stats["sat_variables"] > 0
    assert stats["sat_propagations_per_second"] >= 0.0


def test_smt_solver_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown SAT backend"):
        Solver(backend="no-such-backend")


def test_smt_solver_refuses_assumptions_on_incapable_backends():
    """Assumptions are semantics, not heuristics: a backend that ignored
    them would certify wrong optima, so the facade must fail loudly."""
    solver = Solver(incremental=True)
    flag = solver.bool_var("flag")
    solver.add(flag | ~flag)
    # Simulate a backend advertising no assumption support.
    solver._sat_solver.supports_assumptions = False
    assert solver.check().is_sat()  # assumption-free checks still fine
    with pytest.raises(RuntimeError, match="does not support assumptions"):
        solver.check(assumptions=[flag])


def test_smt_solver_on_the_subprocess_backend(fake_sat_solver):
    solver = Solver(incremental=True, backend="dimacs-subprocess")
    x = solver.int_var("x", 0, 7)
    flag = solver.bool_var("flag")
    solver.add(x == 5)
    # Phase hints must silently no-op (the backend lacks the capability).
    solver.set_phase_hints({x: 2, flag: True})
    assert solver.check().is_sat()
    assert solver.model()[x] == 5
    stats = solver.statistics()
    assert stats["sat_variables"] > 0
    assert stats["sat_clauses"] > 0
    assert stats["sat_subprocess_solves"] == 1
    # No propagation telemetry through a pipe: the rate keys are absent,
    # not reported as misleading zeros.
    assert "sat_propagations_per_second" not in stats
    assert "sat_conflicts_per_second" not in stats
    # Incremental re-check with an added constraint and an assumption.
    solver.add(x <= 5)
    assert solver.check(assumptions=[flag]).is_sat()
    assert solver.model()[flag] is True
    assert solver.statistics()["sat_subprocess_solves"] == 1  # per-check delta


# --------------------------------------------------------------------------- #
# Strategy layer
# --------------------------------------------------------------------------- #
def test_search_context_builds_instances_on_the_requested_backend():
    problem = reduced_problem("none", "single-gate")
    context = SearchContext(problem, SearchLimits(sat_backend="reference"))
    assert context.decide(1).is_sat()
    assert context.instance.solver.backend == "reference"


@pytest.mark.parametrize("strategy", ["linear", "bisection", "warmstart"])
def test_reference_backend_certifies_identical_optima(strategy):
    problem = reduced_problem("bottom", "chain-2")
    flat = SMTScheduler(strategy=strategy).schedule(problem)
    reference = SMTScheduler(strategy=strategy, sat_backend="reference").schedule(
        problem
    )
    assert flat.sat_backend == "flat"
    assert reference.sat_backend == "reference"
    for report in (flat, reference):
        assert report.found and report.optimal
        validate_schedule(report.schedule, require_shielding=problem.shielding)
    assert reference.schedule.num_stages == flat.schedule.num_stages
    assert reference.stages_tried == flat.stages_tried


def test_subprocess_backend_certifies_identical_optima(fake_sat_solver):
    problem = reduced_problem("none", "single-gate")
    flat = SMTScheduler(strategy="linear").schedule(problem)
    external = SMTScheduler(
        strategy="linear", sat_backend="dimacs-subprocess"
    ).schedule(problem)
    assert external.sat_backend == "dimacs-subprocess"
    assert external.found and external.optimal
    assert external.schedule.num_stages == flat.schedule.num_stages
    validate_schedule(external.schedule, require_shielding=problem.shielding)


def test_scheduler_rejects_unknown_or_unavailable_backends(monkeypatch):
    from repro.sat.backend import SOLVER_BINARY_ENV

    with pytest.raises(ValueError, match="unknown SAT backend"):
        SMTScheduler(sat_backend="no-such-backend")
    monkeypatch.setenv(SOLVER_BINARY_ENV, "/nonexistent/solver-binary")
    with pytest.raises(ValueError, match="unavailable"):
        SMTScheduler(sat_backend="dimacs-subprocess")


# --------------------------------------------------------------------------- #
# Portfolio backend variants
# --------------------------------------------------------------------------- #
def test_portfolio_races_extra_backends_when_usable(fake_sat_solver):
    variants = PortfolioStrategy()._backend_variants(SearchLimits())
    assert {"strategy": "bisection", "sat_backend": "dimacs-subprocess"} in variants
    # The deliberately slow seed reference is never raced.
    assert all(v.get("sat_backend") != "reference" for v in variants)
    # An explicitly pinned backend disables the variants: the caller asked
    # to measure that backend, racing others would misattribute results.
    assert PortfolioStrategy()._backend_variants(
        SearchLimits(sat_backend="flat")
    ) == ()
    assert PortfolioStrategy()._backend_variants(
        SearchLimits(sat_backend="dimacs-subprocess")
    ) == ()


def test_portfolio_has_no_backend_variants_without_external_solvers(monkeypatch):
    from repro.sat.backend import SOLVER_BINARY_ENV

    monkeypatch.setenv(SOLVER_BINARY_ENV, "/nonexistent/solver-binary")
    assert PortfolioStrategy()._backend_variants(SearchLimits()) == ()
