"""Tests for the SchedulingProblem IR and its analytic bounds."""

import pytest

from repro.arch import (
    bottom_storage_layout,
    evaluation_layouts,
    no_shielding_layout,
    reduced_layout,
)
from repro.core.problem import SchedulingProblem, ZoneCapacities
from repro.core.structured import StructuredScheduler
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit


def tiny_layout(kind="bottom"):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


# --------------------------------------------------------------------------- #
# Construction and normalisation
# --------------------------------------------------------------------------- #
def test_from_gates_normalises_endpoints():
    problem = SchedulingProblem.from_gates(tiny_layout(), 3, [(2, 0), (1, 0)])
    assert problem.gates == ((0, 2), (0, 1))


def test_from_gates_preserves_duplicates():
    problem = SchedulingProblem.from_gates(tiny_layout(), 2, [(0, 1), (1, 0)])
    assert problem.num_gates == 2
    assert problem.max_gate_load() == 2


@pytest.mark.parametrize("bad", [[(0, 0)], [(0, 3)], [(-1, 1)]])
def test_from_gates_rejects_invalid_gates(bad):
    with pytest.raises(ValueError):
        SchedulingProblem.from_gates(tiny_layout(), 3, bad)


def test_from_gates_rejects_empty_register():
    with pytest.raises(ValueError):
        SchedulingProblem.from_gates(tiny_layout(), 0, [])


def test_shielding_defaults_to_storage_presence():
    zoned = SchedulingProblem.from_gates(tiny_layout("bottom"), 2, [(0, 1)])
    flat = SchedulingProblem.from_gates(tiny_layout("none"), 2, [(0, 1)])
    assert zoned.shielding is True
    assert flat.shielding is False
    override = SchedulingProblem.from_gates(
        tiny_layout("bottom"), 2, [(0, 1)], shielding=False
    )
    assert override.shielding is False


def test_from_circuit_carries_provenance():
    prep = state_preparation_circuit(get_code("steane"))
    problem = SchedulingProblem.from_circuit(
        bottom_storage_layout(), prep, metadata={"origin": "test"}
    )
    assert problem.num_qubits == prep.num_qubits
    assert problem.num_gates == prep.num_cz_gates
    assert problem.metadata["origin"] == "test"
    assert "circuit" in problem.metadata


# --------------------------------------------------------------------------- #
# Derived structure
# --------------------------------------------------------------------------- #
def test_gate_load_and_interaction_graph():
    problem = SchedulingProblem.from_gates(
        tiny_layout(), 4, [(0, 1), (1, 2), (1, 3)]
    )
    assert problem.gate_load() == [1, 3, 1, 1]
    assert problem.max_gate_load() == 3
    graph = problem.interaction_graph()
    assert graph[1] == {0, 2, 3}
    assert graph[0] == {1}
    assert problem.interacting_qubits() == [0, 1, 2, 3]


def test_zone_capacities():
    capacities = ZoneCapacities.of(tiny_layout("bottom"))
    # Reduced bottom layout: 3 columns, entangling rows 1..2, storage row 0,
    # 3 AOD columns x 3 AOD rows.
    assert capacities.entangling_sites == 6
    assert capacities.storage_sites == 3
    assert capacities.aod_traps == 9
    assert capacities.aod_columns == 3
    assert capacities.aod_rows == 3
    flat = ZoneCapacities.of(tiny_layout("none"))
    assert flat.storage_sites == 0


# --------------------------------------------------------------------------- #
# Analytic lower bound
# --------------------------------------------------------------------------- #
def test_lower_bound_gate_load_certificate():
    star = SchedulingProblem.from_gates(tiny_layout(), 4, [(0, 1), (0, 2), (0, 3)])
    assert star.lower_bound() == 3


def test_lower_bound_capacity_certificate():
    # 1 site column x 3 entangling rows and 2x2 AOD: 4 gates/beam max by AOD,
    # 3 by sites -> 7 disjoint gates need ceil(7/3) = 3 beams.
    cramped = reduced_layout("none", x_max=0, h_max=1, v_max=1, c_max=1, r_max=1)
    capacities = ZoneCapacities.of(cramped)
    assert capacities.entangling_sites == 3
    assert capacities.aod_traps == 4
    problem = SchedulingProblem.from_gates(
        cramped, 14, [(2 * i, 2 * i + 1) for i in range(7)]
    )
    assert problem.lower_bound() == 3


def test_lower_bound_is_at_least_one():
    idle = SchedulingProblem.from_gates(tiny_layout(), 2, [])
    assert idle.lower_bound() == 1


@pytest.mark.parametrize("code_name", available_codes())
@pytest.mark.parametrize("layout_name", list(evaluation_layouts()))
def test_lower_bound_never_exceeds_structured_upper_bound(code_name, layout_name):
    """LB <= optimum <= structured stage count, for every registered code."""
    architecture = evaluation_layouts()[layout_name]
    prep = state_preparation_circuit(get_code(code_name))
    problem = SchedulingProblem.from_circuit(architecture, prep)
    schedule = StructuredScheduler().schedule(problem)
    assert problem.lower_bound() <= schedule.num_stages


def test_describe_mentions_the_essentials():
    text = SchedulingProblem.from_gates(no_shielding_layout(), 2, [(0, 1)]).describe()
    assert "2 qubits" in text
    assert "1 CZ gates" in text
    assert "unshielded" in text
