"""Tests for the SchedulingProblem IR and its analytic bounds."""

import pytest

from repro.arch import (
    bottom_storage_layout,
    double_sided_storage_layout,
    evaluation_layouts,
    no_shielding_layout,
    reduced_layout,
)
from repro.core.problem import SchedulingProblem, ZoneCapacities
from repro.core.structured import StructuredScheduler
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit


def tiny_layout(kind="bottom"):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


# --------------------------------------------------------------------------- #
# Construction and normalisation
# --------------------------------------------------------------------------- #
def test_from_gates_normalises_endpoints():
    problem = SchedulingProblem.from_gates(tiny_layout(), 3, [(2, 0), (1, 0)])
    assert problem.gates == ((0, 2), (0, 1))


def test_from_gates_preserves_duplicates():
    problem = SchedulingProblem.from_gates(tiny_layout(), 2, [(0, 1), (1, 0)])
    assert problem.num_gates == 2
    assert problem.max_gate_load() == 2


@pytest.mark.parametrize("bad", [[(0, 0)], [(0, 3)], [(-1, 1)]])
def test_from_gates_rejects_invalid_gates(bad):
    with pytest.raises(ValueError):
        SchedulingProblem.from_gates(tiny_layout(), 3, bad)


def test_from_gates_rejects_empty_register():
    with pytest.raises(ValueError):
        SchedulingProblem.from_gates(tiny_layout(), 0, [])


def test_shielding_defaults_to_storage_presence():
    zoned = SchedulingProblem.from_gates(tiny_layout("bottom"), 2, [(0, 1)])
    flat = SchedulingProblem.from_gates(tiny_layout("none"), 2, [(0, 1)])
    assert zoned.shielding is True
    assert flat.shielding is False
    override = SchedulingProblem.from_gates(
        tiny_layout("bottom"), 2, [(0, 1)], shielding=False
    )
    assert override.shielding is False


def test_from_circuit_carries_provenance():
    prep = state_preparation_circuit(get_code("steane"))
    problem = SchedulingProblem.from_circuit(
        bottom_storage_layout(), prep, metadata={"origin": "test"}
    )
    assert problem.num_qubits == prep.num_qubits
    assert problem.num_gates == prep.num_cz_gates
    assert problem.metadata["origin"] == "test"
    assert "circuit" in problem.metadata


# --------------------------------------------------------------------------- #
# Derived structure
# --------------------------------------------------------------------------- #
def test_gate_load_and_interaction_graph():
    problem = SchedulingProblem.from_gates(
        tiny_layout(), 4, [(0, 1), (1, 2), (1, 3)]
    )
    assert problem.gate_load() == [1, 3, 1, 1]
    assert problem.max_gate_load() == 3
    graph = problem.interaction_graph()
    assert graph[1] == {0, 2, 3}
    assert graph[0] == {1}
    assert problem.interacting_qubits() == [0, 1, 2, 3]


def test_zone_capacities():
    capacities = ZoneCapacities.of(tiny_layout("bottom"))
    # Reduced bottom layout: 3 columns, entangling rows 1..2, storage row 0,
    # 3 AOD columns x 3 AOD rows.
    assert capacities.entangling_sites == 6
    assert capacities.storage_sites == 3
    assert capacities.aod_traps == 9
    assert capacities.aod_columns == 3
    assert capacities.aod_rows == 3
    flat = ZoneCapacities.of(tiny_layout("none"))
    assert flat.storage_sites == 0


# --------------------------------------------------------------------------- #
# Analytic lower bound
# --------------------------------------------------------------------------- #
def test_lower_bound_gate_load_certificate():
    star = SchedulingProblem.from_gates(tiny_layout(), 4, [(0, 1), (0, 2), (0, 3)])
    assert star.rydberg_lower_bound() == 3
    # Shielded bottom layout: the leaves' beams cannot nest, so the +T
    # transfer certificate applies on top (the certified optimum is 5).
    assert star.lower_bound() == 4


def test_lower_bound_capacity_certificate():
    # 1 site column x 3 entangling rows and 2x2 AOD: 4 gates/beam max by AOD,
    # 3 by sites -> 7 disjoint gates need ceil(7/3) = 3 beams.
    cramped = reduced_layout("none", x_max=0, h_max=1, v_max=1, c_max=1, r_max=1)
    capacities = ZoneCapacities.of(cramped)
    assert capacities.entangling_sites == 3
    assert capacities.aod_traps == 4
    problem = SchedulingProblem.from_gates(
        cramped, 14, [(2 * i, 2 * i + 1) for i in range(7)]
    )
    assert problem.lower_bound() == 3


def test_lower_bound_is_at_least_one():
    idle = SchedulingProblem.from_gates(tiny_layout(), 2, [])
    assert idle.lower_bound() == 1


# --------------------------------------------------------------------------- #
# The +T transfer-stage certificate
# --------------------------------------------------------------------------- #
def test_transfer_bound_fires_on_shielded_chain():
    """The chain's endpoints swap sides of the entangling band between their
    beams; on a single-sided shielded layout that forces one transfer stage
    (the certified optimum is exactly 3 = 2 Rydberg + 1 transfer)."""
    chain = SchedulingProblem.from_gates(tiny_layout(), 3, [(0, 1), (1, 2)])
    assert chain.rydberg_lower_bound() == 2
    assert chain.transfer_lower_bound() == 1
    assert chain.lower_bound() == 3


def test_transfer_bound_skips_unshielded_layouts():
    chain = SchedulingProblem.from_gates(tiny_layout("none"), 3, [(0, 1), (1, 2)])
    assert chain.transfer_lower_bound() == 0
    assert chain.lower_bound() == 2


def test_transfer_bound_skips_double_sided_storage():
    """With storage on both sides the order argument breaks down (each
    conflicting qubit can park on its own side), so the certificate must
    not fire."""
    chain = SchedulingProblem.from_gates(
        double_sided_storage_layout(), 3, [(0, 1), (1, 2)]
    )
    assert chain.transfer_lower_bound() == 0


def test_transfer_bound_skips_nestable_busy_sets():
    """Disjoint gates can share one beam, so no pair of qubits is forced to
    swap sides — the certificate must stay quiet (the optimum is 1 stage)."""
    pairs = SchedulingProblem.from_gates(tiny_layout(), 4, [(0, 1), (2, 3)])
    assert pairs.transfer_lower_bound() == 0
    assert pairs.lower_bound() == 1


def test_transfer_bound_requires_partial_qubits():
    """When every qubit is loaded up to the Rydberg bound, a transfer-free
    schedule cannot be refuted by the busy-set argument (K4: the clique
    certificate matches the load, so every qubit is busy in all >= 3
    beams)."""
    k4 = SchedulingProblem.from_gates(
        tiny_layout(), 4, [(a, b) for a in range(4) for b in range(a + 1, 4)]
    )
    assert k4.rydberg_lower_bound() == 3
    assert k4.transfer_lower_bound() == 0


def test_transfer_bound_composes_with_the_clique_certificate():
    """The clique certificate lifts the triangle's Rydberg bound to 3, which
    turns every qubit into a partial one (load 2 < 3 beams) — the busy-set
    argument then fires on top (the certified optimum is 5)."""
    triangle = SchedulingProblem.from_gates(tiny_layout(), 3, [(0, 1), (1, 2), (0, 2)])
    assert triangle.rydberg_lower_bound() == 3
    assert triangle.transfer_lower_bound() == 1
    assert triangle.lower_bound() == 4


@pytest.mark.parametrize(
    "gates, expected_extra",
    [
        # Star: leaves conflict pairwise through the hub -> +1 (optimum 5).
        ([(0, 1), (0, 2), (0, 3)], 1),
        # Path of length 3: the only partial qubits are the endpoints, whose
        # gates are vertex-disjoint and co-beamable -> no certificate.  The
        # certified optimum is indeed transfer-free (2 stages: the outer
        # gates share a beam, the middle gate takes the other).
        ([(0, 1), (1, 2), (2, 3)], 0),
    ],
)
def test_transfer_bound_small_families(gates, expected_extra):
    problem = SchedulingProblem.from_gates(tiny_layout(), 4, gates)
    assert problem.transfer_lower_bound() == expected_extra


@pytest.mark.parametrize("code_name", available_codes())
def test_transfer_bound_never_exceeds_structured_optimum(code_name):
    """+T soundness on real circuits: LB (with the transfer certificate)
    never exceeds the structured schedule, which is feasible by
    construction."""
    architecture = bottom_storage_layout()
    prep = state_preparation_circuit(get_code(code_name))
    problem = SchedulingProblem.from_circuit(architecture, prep)
    schedule = StructuredScheduler().schedule(problem)
    assert problem.lower_bound() <= schedule.num_stages


@pytest.mark.parametrize("code_name", available_codes())
@pytest.mark.parametrize("layout_name", list(evaluation_layouts()))
def test_lower_bound_never_exceeds_structured_upper_bound(code_name, layout_name):
    """LB <= optimum <= structured stage count, for every registered code."""
    architecture = evaluation_layouts()[layout_name]
    prep = state_preparation_circuit(get_code(code_name))
    problem = SchedulingProblem.from_circuit(architecture, prep)
    schedule = StructuredScheduler().schedule(problem)
    assert problem.lower_bound() <= schedule.num_stages


# --------------------------------------------------------------------------- #
# The clique certificate and bound provenance
# --------------------------------------------------------------------------- #
def complete_graph(n):
    return [(a, b) for a in range(n) for b in range(a + 1, n)]


def test_clique_certificate_fires_on_the_triangle():
    """An odd clique needs one more beam than its per-qubit load: every
    triangle beam leaves one member idle, so 3 gates need 3 beams."""
    triangle = SchedulingProblem.from_gates(
        tiny_layout("none"), 3, [(0, 1), (1, 2), (0, 2)]
    )
    assert triangle.max_gate_load() == 2
    assert triangle.clique_lower_bound() == 3
    assert triangle.rydberg_lower_bound() == 3
    breakdown = triangle.bound_breakdown()
    assert breakdown.source == "clique"
    assert breakdown.clique == (0, 1, 2)
    assert breakdown.certificate("gate-load") == 2


def test_clique_certificate_is_exact_on_complete_graphs():
    """K_n needs n beams when n is odd (chromatic index of K_n) and n-1
    when n is even — the sub-clique scoring finds the odd trim."""
    layout = reduced_layout("none", x_max=3, c_max=3, r_max=3)
    k5 = SchedulingProblem.from_gates(layout, 5, complete_graph(5))
    assert k5.clique_lower_bound() == 5
    assert k5.bound_breakdown().clique == (0, 1, 2, 3, 4)
    k4 = SchedulingProblem.from_gates(layout, 4, complete_graph(4))
    assert k4.clique_lower_bound() == 3
    k6 = SchedulingProblem.from_gates(layout, 6, complete_graph(6))
    assert k6.clique_lower_bound() == 5


def test_clique_certificate_counts_gate_multiplicity():
    """Duplicate gates inside the clique tighten the matching bound."""
    doubled = SchedulingProblem.from_gates(
        tiny_layout("none"), 3, [(0, 1), (0, 1), (1, 2), (0, 2)]
    )
    # 4 gate occurrences inside the triangle, one gate per beam: 4 beams.
    assert doubled.clique_lower_bound() == 4
    assert doubled.max_gate_load() == 3


def test_clique_certificate_never_regresses_the_existing_certificates():
    """Chain, star, and bottom instances keep their PR 2/PR 3 bounds."""
    chain = SchedulingProblem.from_gates(tiny_layout(), 3, [(0, 1), (1, 2)])
    star = SchedulingProblem.from_gates(tiny_layout(), 4, [(0, 1), (0, 2), (0, 3)])
    pair = SchedulingProblem.from_gates(tiny_layout(), 2, [(0, 1)])
    assert chain.lower_bound() == 3  # gate-load 2 + transfer 1
    assert star.lower_bound() == 4  # gate-load 3 + transfer 1
    assert pair.lower_bound() == 1
    for problem in (chain, star, pair):
        assert problem.bound_breakdown().rydberg_source == "gate-load"


def test_interaction_cliques_enumerates_maximal_cliques():
    """Pivoting Bron–Kerbosch: a triangle glued to an edge has exactly two
    maximal cliques; isolated qubits are not reported."""
    problem = SchedulingProblem.from_gates(
        reduced_layout("none", x_max=3, c_max=3, r_max=3),
        6,
        [(0, 1), (1, 2), (0, 2), (2, 3)],
    )
    assert problem.interaction_cliques() == [(0, 1, 2), (2, 3)]


@pytest.mark.parametrize(
    "gates, expected_source",
    [
        ([], "trivial"),
        ([(0, 1)], "gate-load"),
        ([(0, 1), (1, 2), (0, 2)], "clique"),
    ],
)
def test_lower_bound_source_names_the_winning_certificate(gates, expected_source):
    problem = SchedulingProblem.from_gates(tiny_layout("none"), 3, gates)
    assert problem.bound_breakdown().source == expected_source


def test_lower_bound_source_reports_the_beam_capacity_certificate():
    cramped = reduced_layout("none", x_max=0, h_max=1, v_max=1, c_max=1, r_max=1)
    problem = SchedulingProblem.from_gates(
        cramped, 14, [(2 * i, 2 * i + 1) for i in range(7)]
    )
    breakdown = problem.bound_breakdown()
    assert breakdown.source == "beam-capacity"
    assert breakdown.certificate("beam-capacity") == 3


def test_lower_bound_source_appends_the_transfer_certificate():
    triangle = SchedulingProblem.from_gates(
        tiny_layout("bottom"), 3, [(0, 1), (1, 2), (0, 2)]
    )
    breakdown = triangle.bound_breakdown()
    assert breakdown.source == "clique+transfer"
    assert breakdown.total == breakdown.rydberg + breakdown.transfer == 4
    assert breakdown.total == triangle.lower_bound()


def test_bound_breakdown_serialises():
    import json

    breakdown = SchedulingProblem.from_gates(
        tiny_layout(), 3, [(0, 1), (1, 2), (0, 2)]
    ).bound_breakdown()
    document = json.loads(json.dumps(breakdown.to_dict()))
    assert document["source"] == "clique+transfer"
    assert document["certificates"]["clique"] == 3
    assert document["clique"] == [0, 1, 2]


def test_describe_mentions_the_essentials():
    text = SchedulingProblem.from_gates(no_shielding_layout(), 2, [(0, 1)]).describe()
    assert "2 qubits" in text
    assert "1 CZ gates" in text
    assert "unshielded" in text
