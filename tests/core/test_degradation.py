"""End-to-end tests of the graceful-degradation contract.

The contract (PR 8's tentpole): on deadline expiry or backend failure a
strategy never raises and never loses work — the report carries

* a ``termination`` verdict (``certified`` / ``deadline`` / ``infeasible``
  / ``backend-error``),
* the best-known witness (the validated structured schedule, or the last
  SAT model reached), and
* a *sound* interval: completed UNSAT probes lift the lower bound
  (``UNSAT at S`` proves the optimum is ``>= S + 1``), while UNKNOWN
  probes lift nothing.

The triangle on the reduced bottom-storage layout is the canonical
non-degenerate instance: analytic lower bound 4, certified optimum 5,
structured witness 7 — so the search interval is real, every degradation
path has work to lose, and every bound claim can be checked against the
known optimum.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.budget import Deadline
from repro.core.problem import SchedulingProblem
from repro.core.report import (
    TERMINATION_BACKEND_ERROR,
    TERMINATION_CERTIFIED,
    TERMINATION_DEADLINE,
    TERMINATION_INFEASIBLE,
    TERMINATIONS,
)
from repro.core.scheduler import SMTScheduler
from repro.core.validator import validate_schedule

STRATEGIES = ("linear", "bisection", "warmstart", "portfolio")

#: The certified optimum of the triangle on the reduced bottom layout.
TRIANGLE_OPTIMUM = 5


def triangle_problem():
    layout = reduced_layout("bottom", x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)
    return SchedulingProblem.from_gates(layout, 3, [(0, 1), (1, 2), (0, 2)])


def assert_sound(report, problem):
    """The interval any degraded report claims must contain the optimum."""
    assert report.lower_bound <= TRIANGLE_OPTIMUM
    if report.upper_bound is not None:
        assert report.upper_bound >= TRIANGLE_OPTIMUM
    if report.schedule is not None:
        validate_schedule(report.schedule, require_shielding=problem.shielding)
        assert report.schedule.num_stages >= TRIANGLE_OPTIMUM
    assert report.termination in TERMINATIONS


# --------------------------------------------------------------------------- #
# Deadline expiry
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_expired_deadline_degrades_every_strategy_to_a_witness(strategy):
    """The acceptance contract: a too-short deadline yields
    ``termination="deadline"`` with a valid fallback schedule and a sound
    interval — never an exception, never a lost witness."""
    problem = triangle_problem()
    report = SMTScheduler(strategy=strategy, deadline=0.0).schedule(problem)
    assert report.termination == TERMINATION_DEADLINE
    assert not report.optimal
    assert report.found  # the structured witness survives as the schedule
    assert report.schedule.metadata["optimal"] is False
    assert_sound(report, problem)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_generous_deadline_still_certifies(strategy):
    problem = triangle_problem()
    report = SMTScheduler(strategy=strategy, deadline=300.0).schedule(problem)
    assert report.termination == TERMINATION_CERTIFIED
    assert report.optimal
    assert report.schedule.num_stages == TRIANGLE_OPTIMUM


def test_per_call_deadline_overrides_the_constructor_budget():
    problem = triangle_problem()
    scheduler = SMTScheduler(strategy="bisection", deadline=300.0)
    report = scheduler.schedule(problem, deadline=0.0)
    assert report.termination == TERMINATION_DEADLINE
    # An already-ticking Deadline instance is accepted too (service-layer
    # request budgets spanning several solves).
    report = scheduler.schedule(problem, deadline=Deadline.after(0.0))
    assert report.termination == TERMINATION_DEADLINE


def test_negative_deadline_is_rejected_eagerly():
    with pytest.raises(ValueError, match="non-negative"):
        SMTScheduler(deadline=-1.0)


def test_mid_search_expiry_keeps_unsat_lifted_bounds(monkeypatch):
    """A deadline expiring mid-bisection must keep the bounds the completed
    probes *proved* — and nothing more.  A stepping clock expires the
    deadline after the first probe window, so the search ends with at most
    one decided horizon; whatever interval the report claims must still
    contain the optimum."""

    class SteppingClock:
        def __init__(self, step):
            self.now = 0.0
            self.step = step

        def __call__(self):
            self.now += self.step
            return self.now

    problem = triangle_problem()
    scheduler = SMTScheduler(strategy="bisection")
    report = scheduler.schedule(
        problem, deadline=Deadline.after(3.0, clock=SteppingClock(1.0))
    )
    assert report.termination == TERMINATION_DEADLINE
    assert report.found
    assert_sound(report, problem)


# --------------------------------------------------------------------------- #
# Chaos: transient faults, retry exhaustion, permanent crashes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", STRATEGIES[:3])
def test_transient_only_faults_certify_the_fault_free_optimum(
    strategy, monkeypatch
):
    """With every solve preceded by exactly one retryable transient fault
    (rate 1.0, consecutive cap 1 <= retry budget), the chaos run must
    certify the same optimum as the fault-free backend and account for the
    retries it burned."""
    monkeypatch.setenv("REPRO_CHAOS_SPEC", "seed=7,transient=1.0,consecutive=1")
    problem = triangle_problem()
    report = SMTScheduler(strategy=strategy, sat_backend="chaos:flat").schedule(
        problem
    )
    baseline = SMTScheduler(strategy=strategy, sat_backend="flat").schedule(
        triangle_problem()
    )
    assert report.termination == TERMINATION_CERTIFIED
    assert report.optimal
    assert report.schedule.num_stages == baseline.schedule.num_stages
    assert report.statistics["backend_retries"] > 0


def test_retry_exhaustion_degrades_with_the_analytic_interval(monkeypatch):
    """A transient streak longer than the retry budget is effectively
    permanent: ``termination="backend-error"``, the analytic interval
    intact, and the structured witness as the fallback schedule."""
    monkeypatch.setenv("REPRO_CHAOS_SPEC", "transient=1.0,consecutive=10")
    problem = triangle_problem()
    report = SMTScheduler(strategy="bisection", sat_backend="chaos:flat").schedule(
        problem
    )
    assert report.termination == TERMINATION_BACKEND_ERROR
    assert not report.optimal
    assert report.found
    # No probe completed, so the analytic certificates stand untouched.
    assert report.lower_bound == problem.lower_bound()
    assert report.upper_bound == report.schedule.num_stages
    assert_sound(report, problem)


@pytest.mark.parametrize("strategy", STRATEGIES[:3])
def test_permanent_crash_mid_search_keeps_completed_probe_bounds(
    strategy, monkeypatch
):
    """A backend dying after its first solve ends the search with
    ``backend-error`` — and the horizons decided *before* the crash still
    tighten the reported interval."""
    monkeypatch.setenv("REPRO_CHAOS_SPEC", "crash-after=1")
    problem = triangle_problem()
    report = SMTScheduler(strategy=strategy, sat_backend="chaos:flat").schedule(
        problem
    )
    assert report.termination == TERMINATION_BACKEND_ERROR
    assert not report.optimal
    assert report.found
    assert_sound(report, problem)


def test_linear_crash_after_unsat_probe_lifts_the_lower_bound(monkeypatch):
    """Linear probes the analytic lower bound (4, UNSAT) first; a crash on
    the next solve must keep that refutation: the reported lower bound
    rises to 5 with probe provenance."""
    monkeypatch.setenv("REPRO_CHAOS_SPEC", "crash-after=1")
    problem = triangle_problem()
    report = SMTScheduler(strategy="linear", sat_backend="chaos:flat").schedule(
        problem
    )
    assert report.termination == TERMINATION_BACKEND_ERROR
    assert report.lower_bound == TRIANGLE_OPTIMUM
    assert report.lower_bound_source.endswith("+unsat-probes")


# --------------------------------------------------------------------------- #
# UNKNOWN probes never refute (the soundness regression tests)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", STRATEGIES[:3])
def test_unknown_probes_never_lift_the_lower_bound(strategy, monkeypatch):
    """The soundness invariant: an UNKNOWN probe at S must not be treated
    as a refuted horizon.  With every probe forced to UNKNOWN the search
    decides nothing, so the reported lower bound must stay exactly the
    analytic one (no ``+unsat-probes`` provenance) and the report must not
    claim infeasibility or optimality."""
    monkeypatch.setenv("REPRO_CHAOS_SPEC", "unknown=1.0")
    problem = triangle_problem()
    report = SMTScheduler(strategy=strategy, sat_backend="chaos:flat").schedule(
        problem
    )
    assert report.termination == TERMINATION_DEADLINE  # degraded, not refuted
    assert report.termination != TERMINATION_INFEASIBLE
    assert not report.optimal
    assert report.lower_bound == problem.lower_bound()
    assert "unsat-probes" not in (report.lower_bound_source or "")
    assert_sound(report, problem)


def test_mixed_unknown_and_unsat_probes_stay_sound(monkeypatch):
    """Fuzz the invariant across seeds: whatever mix of UNKNOWN answers a
    seed produces, a claimed-optimal report must name the true optimum and
    a degraded report's interval must contain it."""
    problem = triangle_problem()
    for seed in range(6):
        monkeypatch.setenv("REPRO_CHAOS_SPEC", f"seed={seed},unknown=0.5")
        report = SMTScheduler(
            strategy="bisection", sat_backend="chaos:flat"
        ).schedule(triangle_problem())
        if report.optimal:
            assert report.schedule.num_stages == TRIANGLE_OPTIMUM
            assert report.termination == TERMINATION_CERTIFIED
        else:
            assert report.termination == TERMINATION_DEADLINE
        assert_sound(report, problem)
