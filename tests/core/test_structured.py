"""Tests for the constructive (structured) scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import (
    bottom_storage_layout,
    double_sided_storage_layout,
    evaluation_layouts,
    no_shielding_layout,
)
from repro.core.problem import SchedulingProblem
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit


def problem_for(architecture, num_qubits, gates, **kwargs):
    return SchedulingProblem.from_gates(architecture, num_qubits, gates, **kwargs)


def code_problem(code_name, architecture):
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    return SchedulingProblem.from_circuit(
        architecture, prep, metadata={"code": code_name}
    ), prep


@pytest.mark.parametrize("code_name", available_codes())
@pytest.mark.parametrize("layout_name", list(evaluation_layouts()))
def test_all_codes_all_layouts_round_trip_the_validator(code_name, layout_name):
    """Every registered code on every layout yields a validator-clean schedule.

    This is the full round trip: problem IR -> structured schedule ->
    independent validation with the problem's own shielding policy, plus
    gate-coverage and serialisation checks.
    """
    architecture = evaluation_layouts()[layout_name]
    problem, prep = code_problem(code_name, architecture)
    schedule = StructuredScheduler().schedule(problem)
    report = validate_schedule(
        schedule, require_shielding=problem.shielding, raise_on_error=False
    )
    assert report.ok, report.errors[:5]
    assert sorted(schedule.executed_gates) == sorted(problem.gates)
    assert schedule.num_qubits == prep.num_qubits
    assert schedule.metadata["backend"] == "structured"
    assert schedule.metadata["code"] == code_name
    # The schedule certifies an upper bound at least as large as the IR's
    # analytic lower bound.
    assert schedule.num_stages >= problem.lower_bound()
    assert schedule.to_dict()["num_qubits"] == prep.num_qubits


@pytest.mark.parametrize("code_name", ["steane", "surface", "honeycomb"])
def test_shielding_on_zoned_layouts(code_name):
    """No idle qubit is exposed to a beam on layouts with storage zones."""
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    for architecture in (bottom_storage_layout(), double_sided_storage_layout()):
        problem = SchedulingProblem.from_circuit(architecture, prep)
        schedule = StructuredScheduler().schedule(problem)
        assert schedule.total_unshielded_idle() == 0


def test_no_shielding_layout_exposes_idle_qubits():
    code = get_code("steane")
    prep = state_preparation_circuit(code)
    problem = SchedulingProblem.from_circuit(no_shielding_layout(), prep)
    schedule = StructuredScheduler().schedule(problem)
    assert schedule.total_unshielded_idle() > 0


def test_transfer_stage_count_relation():
    """The choreography uses between #R-1 and 2(#R-1) transfer stages."""
    code = get_code("shor")
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler().schedule(
        SchedulingProblem.from_circuit(bottom_storage_layout(), prep)
    )
    rydberg = schedule.num_rydberg_stages
    assert rydberg - 1 <= schedule.num_transfer_stages <= 2 * (rydberg - 1)


def test_rydberg_stage_lower_bound():
    """#R is at least the chromatic-index lower bound (max qubit degree)."""
    from repro.circuit.layers import minimum_layer_count

    code = get_code("steane")
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler().schedule(
        SchedulingProblem.from_circuit(bottom_storage_layout(), prep)
    )
    assert schedule.num_rydberg_stages >= minimum_layer_count(prep.cz_gates)


def test_metadata_records_backend_and_problem_provenance():
    problem = problem_for(
        bottom_storage_layout(), 2, [(0, 1)], metadata={"origin": "unit-test"}
    )
    schedule = StructuredScheduler().schedule(problem, metadata={"run": 1})
    assert schedule.metadata["backend"] == "structured"
    assert schedule.metadata["origin"] == "unit-test"
    assert schedule.metadata["run"] == 1


def test_invalid_gate_rejected_by_problem_construction():
    layout = bottom_storage_layout()
    with pytest.raises(ValueError):
        problem_for(layout, 2, [(0, 0)])
    with pytest.raises(ValueError):
        problem_for(layout, 2, [(0, 5)])


def test_raw_gate_lists_rejected():
    with pytest.raises(TypeError):
        StructuredScheduler().schedule(2, [(0, 1)])


def test_single_gate_schedule():
    schedule = StructuredScheduler().schedule(
        problem_for(bottom_storage_layout(), 2, [(0, 1)])
    )
    validate_schedule(schedule)
    assert schedule.num_rydberg_stages == 1
    assert schedule.num_transfer_stages == 0


def test_isolated_qubits_never_move():
    """Qubits without gates stay at their home for the whole schedule."""
    schedule = StructuredScheduler().schedule(
        problem_for(bottom_storage_layout(), 5, [(0, 1), (1, 2)])
    )
    validate_schedule(schedule)
    trajectories = {
        qubit: {stage.placements[qubit].site for stage in schedule.stages}
        for qubit in (3, 4)
    }
    for sites in trajectories.values():
        assert len(sites) == 1


def test_too_many_qubits_for_architecture():
    # The bottom-storage layout offers 16 storage homes + 1 airborne qubit.
    scheduler = StructuredScheduler()
    with pytest.raises(ValueError):
        scheduler.schedule(problem_for(bottom_storage_layout(), 18, [(0, 1)]))


def test_one_scheduler_serves_many_problems():
    """The stateless facade reschedules across architectures correctly."""
    scheduler = StructuredScheduler()
    zoned = scheduler.schedule(problem_for(bottom_storage_layout(), 3, [(0, 1), (1, 2)]))
    flat = scheduler.schedule(problem_for(no_shielding_layout(), 3, [(0, 1), (1, 2)]))
    assert zoned.architecture.has_storage
    assert not flat.architecture.has_storage
    validate_schedule(zoned)
    validate_schedule(flat, require_shielding=False)


# --------------------------------------------------------------------------- #
# The airborne (storage-less) choreography
# --------------------------------------------------------------------------- #
def reduced_none(**overrides):
    from repro.arch import reduced_layout

    kwargs = {"x_max": 2, "h_max": 1, "v_max": 1, "c_max": 2, "r_max": 2}
    kwargs.update(overrides)
    return reduced_layout("none", **kwargs)


#: Instances in the airborne feasible class: (num_qubits, gates, rounds).
AIRBORNE_CASES = [
    (2, [(0, 1)], 1),
    (4, [(0, 1), (2, 3)], 1),
    (2, [(0, 1), (0, 1)], 2),
    (4, [(0, 1), (1, 2), (2, 3), (0, 3)], 2),
    (2, [(0, 1)] * 3, 3),
]


@pytest.mark.parametrize(
    "architecture",
    [reduced_none(), reduced_none(x_max=3, c_max=3, r_max=3), no_shielding_layout()],
    ids=["reduced-tiny", "reduced-wide", "evaluation"],
)
@pytest.mark.parametrize("num_qubits, gates, rounds", AIRBORNE_CASES)
def test_airborne_round_trips_on_every_storage_less_layout(
    architecture, num_qubits, gates, rounds
):
    """Shielded storage-less witnesses: validator-clean with
    require_shielding=True, transfer-free, and exactly one stage per round
    of the edge colouring (= the per-qubit load, so they are optimal)."""
    problem = problem_for(architecture, num_qubits, gates, shielding=True)
    schedule = StructuredScheduler().schedule(problem)
    validate_schedule(schedule, require_shielding=True)
    assert schedule.num_stages == rounds
    assert schedule.num_transfer_stages == 0
    assert all(stage.is_execution for stage in schedule.stages)
    assert schedule.metadata["choreography"] == "airborne"
    assert sorted(schedule.executed_gates) == sorted(problem.gates)
    # Every qubit stays airborne with frozen AOD indices.
    lines = {
        qubit: (placement.column, placement.row)
        for qubit, placement in schedule.stages[0].placements.items()
    }
    for stage in schedule.stages:
        for qubit, placement in stage.placements.items():
            assert placement.in_aod
            assert (placement.column, placement.row) == lines[qubit]


def test_airborne_mixed_cycle_and_pair_units():
    """A 4-cycle and a parallel pair coexist on separate AOD row pairs."""
    architecture = reduced_none(x_max=3, c_max=3, r_max=3)
    gates = [(0, 1), (1, 2), (2, 3), (0, 3), (4, 5), (4, 5)]
    problem = problem_for(architecture, 6, gates, shielding=True)
    schedule = StructuredScheduler().schedule(problem)
    validate_schedule(schedule, require_shielding=True)
    assert schedule.num_stages == 2
    assert schedule.num_transfer_stages == 0


@pytest.mark.parametrize(
    "num_qubits, gates",
    [
        (3, [(0, 1), (1, 2), (0, 2)]),  # odd register
        (3, [(0, 1), (1, 2)]),  # non-regular load
        (4, [(0, 1), (1, 2)]),  # idle qubit
        (4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2), (1, 3)]),  # K4 component
        (6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]),  # 6-cycle
    ],
)
def test_airborne_rejects_unsupported_gate_graphs(num_qubits, gates):
    problem = problem_for(reduced_none(x_max=3, c_max=3, r_max=3),
                          num_qubits, gates, shielding=True)
    with pytest.raises(ValueError):
        StructuredScheduler().schedule(problem)


def test_airborne_rejects_architectures_without_grid_capacity():
    # Three disjoint pairs need three AOD columns; c_max=1 offers two.
    cramped = reduced_none(x_max=2, c_max=1, r_max=2)
    problem = problem_for(cramped, 6, [(0, 1), (2, 3), (4, 5)], shielding=True)
    with pytest.raises(ValueError):
        StructuredScheduler().schedule(problem)


def test_airborne_witness_also_serves_storage_layouts():
    """On a storage layout the transfer-free witness is a legitimate (and
    tighter) upper bound: no idle exposure trivially satisfies Eq. 14."""
    problem = problem_for(
        bottom_storage_layout(), 4, [(0, 1), (1, 2), (2, 3), (0, 3)]
    )
    schedule = StructuredScheduler().schedule_airborne(problem)
    validate_schedule(schedule, require_shielding=True)
    assert schedule.num_stages == 2
    assert schedule.metadata["choreography"] == "airborne"
    # The default dispatch still runs the home-based choreography there.
    assert (
        StructuredScheduler().schedule(problem).metadata["choreography"] == "homes"
    )


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_random_interaction_graphs_are_scheduled_validly(data):
    """Random CZ lists on random layouts always produce valid schedules."""
    num_qubits = data.draw(st.integers(min_value=2, max_value=10))
    possible = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    gates = [edge for edge in possible if data.draw(st.booleans())]
    if not gates:
        gates = [possible[0]]
    layout_factory = data.draw(
        st.sampled_from([no_shielding_layout, bottom_storage_layout, double_sided_storage_layout])
    )
    problem = problem_for(layout_factory(), num_qubits, gates)
    schedule = StructuredScheduler().schedule(problem)
    report = validate_schedule(
        schedule, require_shielding=problem.shielding, raise_on_error=False
    )
    assert report.ok, report.errors[:5]
    assert sorted(schedule.executed_gates) == sorted(set(gates))
