"""Tests for the constructive (structured) scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import (
    bottom_storage_layout,
    double_sided_storage_layout,
    evaluation_layouts,
    no_shielding_layout,
)
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit


@pytest.mark.parametrize("code_name", available_codes())
@pytest.mark.parametrize("layout_name", list(evaluation_layouts()))
def test_all_codes_all_layouts_are_valid(code_name, layout_name):
    """Every Table I cell yields a schedule accepted by the validator."""
    architecture = evaluation_layouts()[layout_name]
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler(architecture).schedule(prep.num_qubits, prep.cz_gates)
    report = validate_schedule(
        schedule, require_shielding=architecture.has_storage, raise_on_error=False
    )
    assert report.ok, report.errors[:5]
    assert sorted(schedule.executed_gates) == sorted(prep.cz_gates)


@pytest.mark.parametrize("code_name", ["steane", "surface", "honeycomb"])
def test_shielding_on_zoned_layouts(code_name):
    """No idle qubit is exposed to a beam on layouts with storage zones."""
    code = get_code(code_name)
    prep = state_preparation_circuit(code)
    for architecture in (bottom_storage_layout(), double_sided_storage_layout()):
        schedule = StructuredScheduler(architecture).schedule(
            prep.num_qubits, prep.cz_gates
        )
        assert schedule.total_unshielded_idle() == 0


def test_no_shielding_layout_exposes_idle_qubits():
    code = get_code("steane")
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler(no_shielding_layout()).schedule(
        prep.num_qubits, prep.cz_gates
    )
    assert schedule.total_unshielded_idle() > 0


def test_transfer_stage_count_relation():
    """The choreography uses between #R-1 and 2(#R-1) transfer stages."""
    code = get_code("shor")
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler(bottom_storage_layout()).schedule(
        prep.num_qubits, prep.cz_gates
    )
    rydberg = schedule.num_rydberg_stages
    assert rydberg - 1 <= schedule.num_transfer_stages <= 2 * (rydberg - 1)


def test_rydberg_stage_lower_bound():
    """#R is at least the chromatic-index lower bound (max qubit degree)."""
    from repro.circuit.layers import minimum_layer_count

    code = get_code("steane")
    prep = state_preparation_circuit(code)
    schedule = StructuredScheduler(bottom_storage_layout()).schedule(
        prep.num_qubits, prep.cz_gates
    )
    assert schedule.num_rydberg_stages >= minimum_layer_count(prep.cz_gates)


def test_metadata_records_backend():
    schedule = StructuredScheduler(bottom_storage_layout()).schedule(2, [(0, 1)])
    assert schedule.metadata["backend"] == "structured"


def test_invalid_gate_rejected():
    scheduler = StructuredScheduler(bottom_storage_layout())
    with pytest.raises(ValueError):
        scheduler.schedule(2, [(0, 0)])
    with pytest.raises(ValueError):
        scheduler.schedule(2, [(0, 5)])


def test_single_gate_schedule():
    schedule = StructuredScheduler(bottom_storage_layout()).schedule(2, [(0, 1)])
    validate_schedule(schedule)
    assert schedule.num_rydberg_stages == 1
    assert schedule.num_transfer_stages == 0


def test_isolated_qubits_never_move():
    """Qubits without gates stay at their home for the whole schedule."""
    schedule = StructuredScheduler(bottom_storage_layout()).schedule(
        5, [(0, 1), (1, 2)]
    )
    validate_schedule(schedule)
    trajectories = {
        qubit: {stage.placements[qubit].site for stage in schedule.stages}
        for qubit in (3, 4)
    }
    for sites in trajectories.values():
        assert len(sites) == 1


def test_too_many_qubits_for_architecture():
    # The bottom-storage layout offers 16 storage homes + 1 airborne qubit.
    scheduler = StructuredScheduler(bottom_storage_layout())
    with pytest.raises(ValueError):
        scheduler.schedule(18, [(0, 1)])


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_random_interaction_graphs_are_scheduled_validly(data):
    """Random CZ lists on random layouts always produce valid schedules."""
    num_qubits = data.draw(st.integers(min_value=2, max_value=10))
    possible = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    gates = [edge for edge in possible if data.draw(st.booleans())]
    if not gates:
        gates = [possible[0]]
    layout_factory = data.draw(
        st.sampled_from([no_shielding_layout, bottom_storage_layout, double_sided_storage_layout])
    )
    architecture = layout_factory()
    schedule = StructuredScheduler(architecture).schedule(num_qubits, gates)
    report = validate_schedule(
        schedule, require_shielding=architecture.has_storage, raise_on_error=False
    )
    assert report.ok, report.errors[:5]
    assert sorted(schedule.executed_gates) == sorted(set(gates))
