"""Property-based cross-checks of the SMT encoding against the validator.

Every satisfiable SMT instance must extract to a schedule that the
independent validator accepts, and the optimal stage count can never exceed
what the constructive backend achieves on the same instance.  The instances
are kept tiny so that the property runs stay within seconds.
"""

from hypothesis import given, settings, strategies as st

from repro.arch import reduced_layout
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.structured import StructuredScheduler
from repro.core.validator import validate_schedule


def _tiny_layout(kind: str):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


@settings(max_examples=8, deadline=None)
@given(st.data())
def test_property_smt_schedules_are_valid_and_at_least_as_good(data):
    num_qubits = data.draw(st.integers(min_value=2, max_value=4))
    possible = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    gates = data.draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=2, unique=True)
    )
    kind = data.draw(st.sampled_from(["none", "bottom"]))
    problem = SchedulingProblem.from_gates(_tiny_layout(kind), num_qubits, gates)

    smt_report = SMTScheduler(time_limit_per_instance=60).schedule(problem)
    assert smt_report.found
    report = validate_schedule(
        smt_report.schedule,
        require_shielding=problem.shielding,
        raise_on_error=False,
    )
    assert report.ok, report.errors[:5]
    assert sorted(smt_report.schedule.executed_gates) == sorted(gates)

    structured = StructuredScheduler().schedule(problem)
    assert smt_report.schedule.num_stages <= structured.num_stages
