"""Property-based tests of the canonical problem IR (repro.core.canonical).

The canonical key is the service cache's correctness foundation: two
problems must share a key exactly when they are isomorphic (same gate
multigraph up to qubit relabeling, same architecture, same shielding).
A false collision would serve a wrong certificate; a false split merely
costs a cache miss — so the invariance direction is tested exhaustively
under random relabelings, and the distinctness direction across every
mutation a request could plausibly carry.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.arch import reduced_layout
from repro.core.canonical import (
    CANONICAL_VERSION,
    architecture_fingerprint,
    canonical_document,
    canonical_form,
    canonical_key,
    canonical_relabeling,
)
from repro.core.problem import SchedulingProblem
from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS, SMT_INSTANCES


def _arch(kind: str = "bottom"):
    return reduced_layout(kind, **REDUCED_LAYOUT_KWARGS)


def _problem(num_qubits, gates, kind="bottom", shielding=None):
    return SchedulingProblem.from_gates(
        _arch(kind), num_qubits, gates, shielding=shielding
    )


def _relabel(num_qubits, gates, rng):
    """A random isomorphic copy: permuted labels, shuffled gate order."""
    relabeling = list(range(num_qubits))
    rng.shuffle(relabeling)
    relabeled = [(relabeling[a], relabeling[b]) for a, b in gates]
    rng.shuffle(relabeled)
    if rng.random() < 0.5:  # endpoint order within a gate is symmetric
        relabeled = [(b, a) for a, b in relabeled]
    return relabeled


# ---------------------------------------------------------------------------
# Invariance: isomorphic instances collide.
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_key_invariant_under_relabeling(data):
    num_qubits = data.draw(st.integers(min_value=2, max_value=6))
    possible = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    gates = data.draw(
        st.lists(st.sampled_from(possible), min_size=1, max_size=6)
    )
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)

    reference = canonical_key(_problem(num_qubits, gates))
    for _ in range(3):
        shuffled = _relabel(num_qubits, gates, rng)
        assert canonical_key(_problem(num_qubits, shuffled)) == reference


def test_key_invariant_under_all_permutations_of_ring_4():
    import itertools

    num_qubits, gates = SMT_INSTANCES["ring-4"]
    keys = set()
    for perm in itertools.permutations(range(num_qubits)):
        relabeled = [(perm[a], perm[b]) for a, b in gates]
        keys.add(canonical_key(_problem(num_qubits, relabeled)))
    assert len(keys) == 1


def test_key_distinguishes_same_degree_sequence():
    # C6 and two disjoint triangles are both 2-regular on 6 qubits — the
    # classic case where naive degree/colour hashing collides.
    cycle = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]
    triangles = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    assert canonical_key(_problem(6, cycle)) != canonical_key(
        _problem(6, triangles)
    )


# ---------------------------------------------------------------------------
# Distinctness: non-isomorphic mutations split.
# ---------------------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_property_key_splits_on_gate_mutations(data):
    num_qubits = data.draw(st.integers(min_value=3, max_value=6))
    possible = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    gates = data.draw(
        st.lists(
            st.sampled_from(possible), min_size=1, max_size=5, unique=True
        )
    )
    base = canonical_key(_problem(num_qubits, gates))

    # Duplicating a gate changes the multigraph (multiplicity matters).
    duplicated = list(gates) + [gates[0]]
    assert canonical_key(_problem(num_qubits, duplicated)) != base

    # Removing a gate changes the edge count.
    if len(gates) > 1:
        removed = list(gates)[1:]
        assert canonical_key(_problem(num_qubits, removed)) != base

    # Adding a fresh gate changes the edge count.
    missing = [pair for pair in possible if pair not in set(gates)]
    if missing:
        added = list(gates) + [missing[0]]
        assert canonical_key(_problem(num_qubits, added)) != base


def test_key_splits_on_architecture_and_shielding():
    num_qubits, gates = SMT_INSTANCES["triangle"]
    bottom = canonical_key(_problem(num_qubits, gates, kind="bottom"))
    none = canonical_key(_problem(num_qubits, gates, kind="none"))
    unshielded = canonical_key(
        _problem(num_qubits, gates, kind="bottom", shielding=False)
    )
    assert bottom != none
    assert bottom != unshielded


def test_key_splits_on_qubit_count():
    # An extra isolated qubit is not the same problem (trap capacity).
    _, gates = SMT_INSTANCES["triangle"]
    assert canonical_key(_problem(3, gates)) != canonical_key(
        _problem(4, gates)
    )


# ---------------------------------------------------------------------------
# Stability: hashes are pinned across processes and releases.
# ---------------------------------------------------------------------------

GOLDEN_KEYS = {
    "single-gate": "9bd3875bc641b131989618a163b81040cad9f5e1f0e8e60264e635fcb9bbc2c6",
    "triangle": "4d9c60995bd33c1853500190a26a196ad7c70b8145c9f033af234cf9f22c59b6",
    "ring-4": "5e6926bf3d0a51e4aa2cc8ed4731c0a0cf583198da9cc78832244755ff30ebcf",
}


def test_golden_keys_are_stable():
    # A change here invalidates every persisted cache — bump
    # CANONICAL_VERSION when the document format changes so old entries
    # miss instead of colliding wrongly.
    assert CANONICAL_VERSION == 1
    for name, expected in GOLDEN_KEYS.items():
        num_qubits, gates = SMT_INSTANCES[name]
        assert canonical_key(_problem(num_qubits, gates)) == expected, name


def test_golden_key_for_relabeled_triangle():
    # Byte-distinct relabeling of the same instance → the same pinned key.
    relabeled = [(2, 1), (0, 2), (1, 0)]
    assert (
        canonical_key(_problem(3, relabeled)) == GOLDEN_KEYS["triangle"]
    )


# ---------------------------------------------------------------------------
# Mechanics: relabeling, canonical form, document, fingerprint.
# ---------------------------------------------------------------------------


def test_canonical_relabeling_is_a_permutation():
    num_qubits, gates = SMT_INSTANCES["ring-4"]
    relabeling = canonical_relabeling(_problem(num_qubits, gates))
    assert sorted(relabeling) == list(range(num_qubits))


def test_canonical_form_is_idempotent():
    num_qubits, gates = SMT_INSTANCES["ring-4"]
    first, _ = canonical_form(_problem(num_qubits, [(1, 3), (3, 0), (0, 2), (2, 1)]))
    second, _ = canonical_form(first)
    assert sorted(first.gates) == sorted(second.gates)
    assert canonical_key(first) == canonical_key(second)


def test_isolated_qubits_get_trailing_labels():
    # Gate on (3, 4) of 5 qubits: the two active qubits must canonicalise
    # to {0, 1}; the isolated ones fill the tail.
    problem = _problem(5, [(3, 4)])
    canonical, _ = canonical_form(problem)
    assert sorted(canonical.gates) == [(0, 1)]


def test_canonical_document_shape():
    num_qubits, gates = SMT_INSTANCES["triangle"]
    document = canonical_document(_problem(num_qubits, gates))
    assert document["version"] == CANONICAL_VERSION
    assert document["num_qubits"] == num_qubits
    assert document["shielding"] is True
    assert len(document["gates"]) == len(gates)
    assert document["architecture"]["zones"]


def test_architecture_fingerprint_ignores_display_names():
    import dataclasses

    reference = architecture_fingerprint(_arch("bottom"))
    renamed = dataclasses.replace(
        _arch("bottom"), name="a completely different display name"
    )
    assert architecture_fingerprint(renamed) == reference
    assert architecture_fingerprint(_arch("none")) != reference
