"""Tests for the pluggable minimum-stage search strategies.

Covers the registry, the agreement of linear/bisection/warmstart on the
certified optimum across sub-instances of every registered code, the
soundness of the analytic lower bound against certified optima, and the
no-op guarantee of phase hints on SAT/UNSAT answers.
"""

import pytest

from repro.arch import reduced_layout
from repro.core.encoding import encode_incremental_problem
from repro.core.problem import SchedulingProblem
from repro.core.report import SchedulerReport, SchedulerResult
from repro.core.scheduler import SMTScheduler
from repro.core.strategies import (
    PortfolioStrategy,
    SearchLimits,
    SearchStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    seeded_phase_hints,
)
from repro.core.strategies.portfolio import DEFAULT_CONFIGS as PORTFOLIO_CONFIGS
from repro.core.validator import validate_schedule
from repro.evaluation.runner import SMT_INSTANCES
from repro.qec import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit
from repro.smt import Solver

STRATEGIES = ("linear", "bisection", "warmstart")


def tiny_layout(kind):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


def tiny_problem(kind, num_qubits, gates):
    return SchedulingProblem.from_gates(tiny_layout(kind), num_qubits, gates)


def code_subproblem(code_name, kind="bottom", max_qubits=4):
    """The prep circuit of *code_name* restricted to its first qubits."""
    prep = state_preparation_circuit(get_code(code_name))
    keep = sorted(
        {q for gate in prep.cz_gates for q in gate}
    )[:max_qubits]
    remap = {q: i for i, q in enumerate(keep)}
    gates = [
        (remap[a], remap[b])
        for a, b in prep.cz_gates
        if a in remap and b in remap
    ]
    if not gates:  # pragma: no cover - every code has local CZ pairs
        gates = [(0, 1)]
    return SchedulingProblem.from_gates(tiny_layout(kind), len(keep), gates)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
def test_registry_lists_builtin_strategies():
    assert available_strategies() == ["bisection", "linear", "portfolio", "warmstart"]


def test_unknown_strategy_rejected():
    with pytest.raises(ValueError):
        get_strategy("simulated-annealing")
    with pytest.raises(ValueError):
        SMTScheduler(strategy="simulated-annealing")


def test_register_strategy_requires_name_and_uniqueness():
    with pytest.raises(ValueError):

        @register_strategy
        class Nameless(SearchStrategy):
            name = ""

            def run(self, problem, limits, metadata=None):  # pragma: no cover
                raise NotImplementedError

    with pytest.raises(ValueError):

        @register_strategy
        class Duplicate(SearchStrategy):
            name = "linear"

            def run(self, problem, limits, metadata=None):  # pragma: no cover
                raise NotImplementedError


def test_bisection_requires_incremental_solving():
    strategy = get_strategy("bisection")
    with pytest.raises(ValueError):
        strategy.run(
            tiny_problem("none", 2, [(0, 1)]), SearchLimits(incremental=False)
        )
    # ... and the scheduler facade rejects the combination eagerly.
    for name in ("bisection", "warmstart"):
        with pytest.raises(ValueError):
            SMTScheduler(strategy=name, incremental=False)
    SMTScheduler(strategy="linear", incremental=False)  # fine


def test_report_alias_preserved():
    assert SchedulerResult is SchedulerReport


# --------------------------------------------------------------------------- #
# Agreement across strategies, for every registered code
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("code_name", available_codes())
def test_strategies_agree_on_stage_counts_for_all_codes(code_name):
    """linear/bisection/warmstart certify the same optimum on a reduced
    sub-instance of every registered code's preparation circuit."""
    problem = code_subproblem(code_name)
    stage_counts = {}
    for name in STRATEGIES:
        report = SMTScheduler(time_limit_per_instance=300, strategy=name).schedule(
            problem
        )
        assert report.found and report.optimal, (code_name, name)
        validate_schedule(report.schedule, require_shielding=problem.shielding)
        stage_counts[name] = report.schedule.num_stages
        assert report.lower_bound <= report.schedule.num_stages
        if report.upper_bound is not None:
            assert report.schedule.num_stages <= report.upper_bound
    assert len(set(stage_counts.values())) == 1, stage_counts


@pytest.mark.parametrize("layout_kind", ["none", "bottom"])
@pytest.mark.parametrize("instance_name", list(SMT_INSTANCES))
def test_lower_bound_never_exceeds_certified_optimum(layout_kind, instance_name):
    num_qubits, gates = SMT_INSTANCES[instance_name]
    problem = tiny_problem(layout_kind, num_qubits, gates)
    report = SMTScheduler(time_limit_per_instance=300).schedule(problem)
    assert report.found and report.optimal
    assert problem.lower_bound() <= report.schedule.num_stages


# --------------------------------------------------------------------------- #
# Bisection specifics
# --------------------------------------------------------------------------- #
def test_bisection_certifies_degenerate_interval_without_probes():
    """When the structured upper bound equals the lower bound, the optimum
    is certified analytically — zero SMT horizons."""
    report = SMTScheduler(strategy="bisection").schedule(
        tiny_problem("bottom", 2, [(0, 1)])
    )
    assert report.found and report.optimal
    assert report.stages_tried == []
    assert report.lower_bound == report.upper_bound == 1
    assert report.schedule.num_stages == 1
    assert report.schedule.metadata["backend"] == "structured"


def test_bisection_never_probes_more_than_linear_on_the_triangle():
    """The clique+transfer certificates start the triangle walk at 4, so
    both strategies now reach the optimum (5) within two probes; bisection
    must not fall behind linear on the tightened interval."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)])
    linear = SMTScheduler(time_limit_per_instance=300, strategy="linear").schedule(
        problem
    )
    bisection = SMTScheduler(
        time_limit_per_instance=300, strategy="bisection"
    ).schedule(problem)
    assert linear.schedule.num_stages == bisection.schedule.num_stages == 5
    assert linear.lower_bound == bisection.lower_bound == 4
    assert linear.stages_tried == [4, 5]
    assert bisection.num_horizons <= linear.num_horizons


def test_bisection_certifies_ring_without_probes_where_linear_needs_one():
    """The airborne witness closes the ring's interval analytically: the
    transfer-free schedule meets the gate-load bound exactly."""
    problem = tiny_problem("bottom", 4, [(0, 1), (1, 2), (2, 3), (0, 3)])
    linear = SMTScheduler(time_limit_per_instance=300, strategy="linear").schedule(
        problem
    )
    bisection = SMTScheduler(strategy="bisection").schedule(problem)
    assert linear.schedule.num_stages == bisection.schedule.num_stages == 2
    assert linear.num_horizons == 1
    assert bisection.stages_tried == []
    assert bisection.upper_bound == 2
    assert bisection.upper_bound_source == "structured-airborne"
    assert bisection.schedule.num_transfer_stages == 0


def test_bisection_probes_stay_within_the_bounds():
    report = SMTScheduler(
        time_limit_per_instance=300, strategy="bisection"
    ).schedule(tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)]))
    assert all(
        report.lower_bound <= probe <= report.upper_bound
        for probe in report.stages_tried
    )


def test_schedule_metadata_provenance_is_path_independent():
    """SMT-extracted schedules and the structured witness both carry the
    problem metadata and the winning strategy name."""
    probed = SMTScheduler(time_limit_per_instance=300, strategy="bisection").schedule(
        SchedulingProblem.from_gates(
            tiny_layout("bottom"), 3, [(0, 1), (1, 2)], metadata={"code": "chain"}
        )
    )
    degenerate = SMTScheduler(strategy="bisection").schedule(
        SchedulingProblem.from_gates(
            tiny_layout("bottom"), 2, [(0, 1)], metadata={"code": "pair"}
        )
    )
    linear = SMTScheduler(time_limit_per_instance=300).schedule(
        SchedulingProblem.from_gates(
            tiny_layout("bottom"), 2, [(0, 1)], metadata={"code": "pair"}
        )
    )
    assert probed.schedule.metadata["code"] == "chain"
    assert probed.schedule.metadata["strategy"] == "bisection"
    assert degenerate.schedule.metadata["code"] == "pair"
    assert degenerate.schedule.metadata["strategy"] == "bisection"
    assert linear.schedule.metadata["code"] == "pair"
    assert linear.schedule.metadata["strategy"] == "linear"
    for report in (probed, degenerate, linear):
        assert report.schedule.metadata["optimal"] is True


def test_reports_carry_bound_provenance():
    """Every strategy stamps the lower-bound certificate source; the
    bound-driven ones also stamp the witness choreography."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)])
    linear = SMTScheduler(time_limit_per_instance=300, strategy="linear").schedule(
        problem
    )
    assert linear.lower_bound_source == "clique+transfer"
    assert linear.upper_bound_source is None
    bisection = SMTScheduler(
        time_limit_per_instance=300, strategy="bisection"
    ).schedule(problem)
    assert bisection.lower_bound_source == "clique+transfer"
    assert bisection.upper_bound_source == "structured-homes"


def test_bisection_certifies_shielded_storage_less_instances():
    """shielding=True on the storage-less layout: the airborne witness turns
    the previously open interval into a zero-probe certificate."""
    for gates, optimum in [
        ([(0, 1), (2, 3)], 1),
        ([(0, 1), (1, 2), (2, 3), (0, 3)], 2),
    ]:
        problem = SchedulingProblem.from_gates(
            tiny_layout("none"), 4, gates, shielding=True
        )
        report = SMTScheduler(strategy="bisection").schedule(problem)
        assert report.found and report.optimal
        assert report.stages_tried == []
        assert report.upper_bound == report.lower_bound == optimum
        assert report.upper_bound_source == "structured-airborne"
        validate_schedule(report.schedule, require_shielding=True)


def test_bisection_falls_back_to_witness_under_harsh_limits():
    """With a conflict budget too small to decide anything, the structured
    witness is still returned (anytime behaviour), flagged non-optimal."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2)])
    report = SMTScheduler(
        max_conflicts_per_instance=1, strategy="bisection"
    ).schedule(problem)
    assert report.found
    assert not report.optimal
    validate_schedule(report.schedule, require_shielding=True)


# --------------------------------------------------------------------------- #
# Phase hints
# --------------------------------------------------------------------------- #
def test_phase_hints_never_change_answers():
    """The same formula answers identically with and without hints."""

    def build(hinted):
        solver = Solver(incremental=True)
        x = solver.int_var("x", 0, 7)
        a = solver.bool_var("a")
        solver.add(a | (x >= 5))
        if hinted:
            solver.set_phase_hints({x: 7, a: False})
        return solver, x, a

    for hinted in (False, True):
        solver, x, a = build(hinted)
        assert solver.check().is_sat()
        solver.add(x <= 4)
        assert solver.check(assumptions=[~a]).is_unsat()
        assert solver.check().is_sat()


def test_phase_hints_bias_the_first_model():
    solver = Solver(incremental=True)
    x = solver.int_var("x", 0, 7)
    solver.set_phase_hints({x: 5})
    assert solver.check().is_sat()
    assert solver.model()[x] == 5


def test_phase_hints_clamp_out_of_domain_values():
    solver = Solver(incremental=True)
    x = solver.int_var("x", 0, 3)
    solver.set_phase_hints({x: 99})
    assert solver.check().is_sat()
    assert solver.model()[x] == 3


def test_phase_hints_reject_non_variables():
    solver = Solver()
    with pytest.raises(TypeError):
        solver.set_phase_hints({"x": True})


def test_warmstart_matches_bisection_answers_with_and_without_budget():
    """Hints must not perturb SAT/UNSAT outcomes of the scheduler either."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2)])
    plain = SMTScheduler(time_limit_per_instance=300, strategy="bisection").schedule(
        problem
    )
    warm = SMTScheduler(time_limit_per_instance=300, strategy="warmstart").schedule(
        problem
    )
    assert warm.found and plain.found
    assert warm.schedule.num_stages == plain.schedule.num_stages
    assert warm.optimal == plain.optimal
    assert warm.stages_tried == plain.stages_tried


# --------------------------------------------------------------------------- #
# Portfolio racing
# --------------------------------------------------------------------------- #
def test_portfolio_certifies_the_bisection_optimum_on_every_smoke_cell():
    """Same optimal S as bisection on every (layout, instance) smoke cell."""
    for kind in ("none", "bottom"):
        for name, (num_qubits, gates) in SMT_INSTANCES.items():
            problem = tiny_problem(kind, num_qubits, gates)
            bisection = SMTScheduler(
                time_limit_per_instance=300, strategy="bisection"
            ).schedule(problem)
            portfolio = SMTScheduler(
                time_limit_per_instance=300, strategy="portfolio"
            ).schedule(problem)
            assert portfolio.found and portfolio.optimal, (kind, name)
            assert (
                portfolio.schedule.num_stages == bisection.schedule.num_stages
            ), (kind, name)
            assert portfolio.strategy == "portfolio"
            assert portfolio.winner is not None
            validate_schedule(
                portfolio.schedule, require_shielding=problem.shielding
            )


def test_portfolio_narrow_interval_runs_inline():
    """With LB == UB (single gate) no process fan-out can pay off; the
    portfolio must certify through the inline bisection path."""
    report = SMTScheduler(strategy="portfolio").schedule(
        tiny_problem("bottom", 2, [(0, 1)])
    )
    assert report.found and report.optimal
    assert report.schedule.num_stages == 1
    assert report.winner == {"strategy": "bisection", "mode": "inline"}
    assert report.strategy == "portfolio"


def test_portfolio_race_first_certificate_wins_and_cancels_losers():
    """Forcing the race (jobs=2) on the wide-interval cell: the winner's
    configuration is recorded and the losers are cancelled/terminated."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)])
    report = PortfolioStrategy(jobs=2).run(
        problem, SearchLimits(time_limit=300)
    )
    assert report.found and report.optimal
    assert report.schedule.num_stages == 5
    assert report.winner["mode"] == "raced"
    assert report.winner["strategy"] in {"bisection", "warmstart", "linear"}
    raced = report.winner["raced_configs"]
    assert raced == len(PORTFOLIO_CONFIGS)
    assert report.winner["finished"] + report.winner["cancelled"] <= raced
    assert report.winner["cancelled"] >= 1  # someone lost the race
    assert report.statistics["portfolio_cancelled"] == report.winner["cancelled"]
    assert report.schedule.metadata["strategy"] == "portfolio"


def test_portfolio_repeated_runs_return_the_same_optimal_s():
    """Whichever configuration wins the race, the certified optimum is the
    same — racing buys wall-clock, never answers."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)])
    stage_counts = set()
    for _ in range(2):
        report = PortfolioStrategy(jobs=2).run(
            problem, SearchLimits(time_limit=300)
        )
        assert report.found and report.optimal
        stage_counts.add(report.schedule.num_stages)
    assert stage_counts == {5}


def test_portfolio_custom_configs_and_serial_fallback():
    """jobs=1 must fall back to the deterministic inline path even on a
    wide interval (nothing to race on one worker)."""
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)])
    report = PortfolioStrategy(
        configs=[{"strategy": "bisection"}, {"strategy": "linear"}], jobs=1
    ).run(problem, SearchLimits(time_limit=300))
    assert report.found and report.optimal
    assert report.schedule.num_stages == 5
    assert report.winner["mode"] == "inline"


def test_portfolio_requires_incremental_limits():
    with pytest.raises(ValueError):
        PortfolioStrategy().run(
            tiny_problem("bottom", 2, [(0, 1)]), SearchLimits(incremental=False)
        )
    with pytest.raises(ValueError):
        SMTScheduler(strategy="portfolio", incremental=False)


# --------------------------------------------------------------------------- #
# Seeded phase hints (the portfolio's diversification knob)
# --------------------------------------------------------------------------- #
def test_seeded_phase_hints_are_deterministic():
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2)])
    instance = encode_incremental_problem(problem, num_stages=2, max_stages=4)
    first = seeded_phase_hints(instance, seed=7)
    second = seeded_phase_hints(instance, seed=7)
    different = seeded_phase_hints(instance, seed=8)
    assert first == second
    assert first != different
    assert all(0 <= v < instance.max_stages for k, v in first.items()
               if k in instance.variables.gate_stage)


@pytest.mark.parametrize("seed", [1, 2, 31337])
def test_phase_seeded_search_preserves_the_optimum(seed):
    problem = tiny_problem("bottom", 3, [(0, 1), (1, 2), (0, 2)])
    plain = SMTScheduler(time_limit_per_instance=300, strategy="bisection").schedule(
        problem
    )
    seeded = SMTScheduler(
        time_limit_per_instance=300, strategy="bisection", phase_seed=seed
    ).schedule(problem)
    assert seeded.found and seeded.optimal
    assert seeded.schedule.num_stages == plain.schedule.num_stages
    assert seeded.stages_tried == plain.stages_tried
