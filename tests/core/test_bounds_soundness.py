"""Randomized bounds-soundness fuzz suite.

Seeded instance generators drive the full bounds engine end to end: for
every generated instance the analytic lower bound must not exceed the
certified SMT optimum, the optimum must not exceed the structured upper
bound, and every witness must survive the independent validator.  Seeds are
deterministic (parametrized) so a CI failure reproduces locally by running
the same test id.

Three generators cover the three bound regimes:

* :func:`random_problem` — arbitrary gate lists (duplicates included) over
  the seed layouts, shielding both on and off where the layout allows it;
* :func:`random_airborne_problem` — shielded storage-less instances from
  the airborne choreography's feasible class (load-regular unions of gate
  pairs, parallel bundles, and 4-cycles), where the interval must close
  analytically and the SMT optimum must agree exactly;
* a handful of deliberately infeasible shielded storage-less instances,
  locking that a ``None`` upper bound coincides with SMT infeasibility
  rather than hiding a missed witness.
"""

import random

import pytest

from repro.arch import reduced_layout
from repro.core.problem import SchedulingProblem
from repro.core.scheduler import SMTScheduler
from repro.core.strategies.bisection import structured_upper_bound
from repro.core.validator import validate_schedule

LAYOUT_KINDS = ("none", "bottom", "double")

SEEDS = range(6)


def fuzz_layout(kind):
    return reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)


def airborne_layout():
    # One extra site/AOD line in each direction so that mixed airborne
    # grids (cycle + pair units need 4 AOD rows) stay in range.
    return reduced_layout("none", x_max=3, h_max=1, v_max=1, c_max=3, r_max=3)


def random_problem(rng: random.Random) -> SchedulingProblem:
    kind = rng.choice(LAYOUT_KINDS)
    architecture = fuzz_layout(kind)
    num_qubits = rng.randint(2, 4)
    num_gates = rng.randint(1, 4)
    gates = []
    while len(gates) < num_gates:
        a, b = rng.sample(range(num_qubits), 2)
        gates.append((a, b))
        if len(gates) < num_gates and rng.random() < 0.2:
            gates.append((a, b))  # duplicate gates are part of the contract
    shielding = None
    if architecture.has_storage and rng.random() < 0.3:
        shielding = False
    return SchedulingProblem.from_gates(
        architecture, num_qubits, gates, shielding=shielding
    )


def random_airborne_problem(rng: random.Random) -> SchedulingProblem:
    units = []
    if rng.random() < 0.5:
        # One 4-cycle, optionally joined by a parallel pair (k = 2).
        rounds = 2
        units.append(("cycle", 4))
        if rng.random() < 0.5:
            units.append(("pair", 2))
    else:
        rounds = rng.randint(1, 3)
        for _ in range(rng.randint(1, 2)):
            units.append(("pair", 2))
    num_qubits = sum(size for _, size in units)
    labels = list(range(num_qubits))
    rng.shuffle(labels)
    gates = []
    next_label = 0
    for kind, size in units:
        qubits = labels[next_label : next_label + size]
        next_label += size
        if kind == "cycle":
            a, b, c, d = qubits
            gates += [(a, b), (b, c), (c, d), (d, a)]
        else:
            gates += [(qubits[0], qubits[1])] * rounds
    rng.shuffle(gates)
    return SchedulingProblem.from_gates(
        airborne_layout(), num_qubits, gates, shielding=True
    )


# --------------------------------------------------------------------------- #
# LB <= certified optimum <= UB on arbitrary instances
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_bounds_bracket_the_certified_optimum(seed):
    rng = random.Random(seed)
    for _ in range(2):
        problem = random_problem(rng)
        breakdown = problem.bound_breakdown()
        witness = structured_upper_bound(problem)
        if witness is not None:
            validate_schedule(witness, require_shielding=problem.shielding)
            assert breakdown.total <= witness.num_stages, problem.describe()
        budget = witness.num_stages if witness is not None else breakdown.total + 4
        report = SMTScheduler(
            time_limit_per_instance=300,
            strategy="bisection",
            max_stages=max(budget, breakdown.total),
        ).schedule(problem)
        if witness is not None:
            # With a validated witness the search interval is closed, so
            # bisection must certify within the stage budget.
            assert report.found and report.optimal, problem.describe()
        if report.found and report.optimal:
            optimum = report.schedule.num_stages
            assert breakdown.total <= optimum, problem.describe()
            if witness is not None:
                assert optimum <= witness.num_stages, problem.describe()
            validate_schedule(report.schedule, require_shielding=problem.shielding)
            assert report.lower_bound_source == breakdown.source


# --------------------------------------------------------------------------- #
# Shielded storage-less instances: the interval must close analytically
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_shielded_storage_less_certifies_without_probes(seed):
    rng = random.Random(seed)
    problem = random_airborne_problem(rng)
    rounds = problem.max_gate_load()
    witness = structured_upper_bound(problem)
    assert witness is not None, problem.describe()
    validate_schedule(witness, require_shielding=True)
    assert witness.num_stages == rounds
    assert witness.num_transfer_stages == 0
    report = SMTScheduler(strategy="bisection").schedule(problem)
    assert report.found and report.optimal
    assert report.stages_tried == []
    assert report.upper_bound == report.lower_bound == rounds
    # Independent SMT cross-check: the exact search agrees with the
    # analytically certified optimum.
    linear = SMTScheduler(
        time_limit_per_instance=300, strategy="linear", max_stages=rounds + 2
    ).schedule(problem)
    assert linear.found and linear.optimal
    assert linear.schedule.num_stages == rounds


@pytest.mark.parametrize(
    "num_qubits, gates",
    [
        (3, [(0, 1), (1, 2), (0, 2)]),  # odd register: someone always idles
        (3, [(0, 1), (1, 2)]),  # non-regular load
        (4, [(0, 1), (1, 2)]),  # a qubit with no gate at all
    ],
)
def test_shielded_storage_less_infeasible_instances_have_no_witness(
    num_qubits, gates
):
    """A ``None`` upper bound on these instances is not a missed witness:
    the SMT search agrees that no shielded schedule exists at any horizon
    near the bound (idle qubits cannot leave an all-covering entangling
    zone)."""
    problem = SchedulingProblem.from_gates(
        fuzz_layout("none"), num_qubits, gates, shielding=True
    )
    assert structured_upper_bound(problem) is None
    report = SMTScheduler(
        time_limit_per_instance=300,
        strategy="linear",
        max_stages=problem.lower_bound() + 2,
    ).schedule(problem)
    assert not report.found


# --------------------------------------------------------------------------- #
# Duplicate gates (the encoding bug this suite exists to catch)
# --------------------------------------------------------------------------- #
def test_duplicate_gates_are_schedulable_and_bounded():
    """Repeated CZ gates execute once per occurrence; the SMT encoding's
    unintended-interaction constraint must accept the pair whenever ANY
    occurrence executes (a single-index lookup made these instances
    unsatisfiable)."""
    problem = SchedulingProblem.from_gates(
        fuzz_layout("bottom"), 3, [(0, 1), (0, 1), (1, 2)]
    )
    report = SMTScheduler(
        time_limit_per_instance=300, strategy="bisection"
    ).schedule(problem)
    assert report.found and report.optimal
    assert problem.lower_bound() <= report.schedule.num_stages
    executed = [tuple(sorted(g)) for g in report.schedule.executed_gates]
    assert executed.count((0, 1)) == 2
