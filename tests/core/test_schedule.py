"""Tests for the schedule data model."""

import json

import pytest

from repro.arch import bottom_storage_layout
from repro.core.schedule import QubitPlacement, Schedule, Stage, StageKind


def make_simple_schedule():
    arch = bottom_storage_layout()
    beam = {
        0: QubitPlacement(x=0, y=4, h=0, v=0, in_aod=True, column=0, row=0),
        1: QubitPlacement(x=0, y=4, h=1, v=0, in_aod=True, column=1, row=0),
        2: QubitPlacement(x=0, y=0),
    }
    transfer = {
        0: QubitPlacement(x=0, y=1, h=0, v=0, in_aod=True, column=0, row=0),
        1: QubitPlacement(x=1, y=1, h=0, v=0, in_aod=True, column=1, row=0),
        2: QubitPlacement(x=0, y=0),
    }
    final = {
        0: QubitPlacement(x=0, y=1),
        1: QubitPlacement(x=1, y=1),
        2: QubitPlacement(x=0, y=0, in_aod=True, column=0, row=0, h=1),
    }
    stages = [
        Stage(kind=StageKind.RYDBERG, placements=beam, gates=[(0, 1)]),
        Stage(
            kind=StageKind.TRANSFER,
            placements=transfer,
            stored_qubits=[0, 1],
            loaded_qubits=[2],
        ),
        Stage(kind=StageKind.RYDBERG, placements=final, gates=[]),
    ]
    return Schedule(
        architecture=arch, num_qubits=3, stages=stages, target_gates=[(0, 1)]
    )


def test_qubit_placement_validation():
    with pytest.raises(ValueError):
        QubitPlacement(x=0, y=0, in_aod=True)  # missing column/row
    placement = QubitPlacement(x=1, y=2, h=1, v=-1, in_aod=True, column=0, row=0)
    assert placement.position.x == 1
    assert placement.site == (1, 2)
    assert not placement.position.is_site_center
    moved = placement.moved_to(h=0, v=0)
    assert moved.position.is_site_center


def test_stage_kind_restrictions():
    placements = {0: QubitPlacement(x=0, y=0)}
    with pytest.raises(ValueError):
        Stage(kind=StageKind.RYDBERG, placements=placements, stored_qubits=[0])
    with pytest.raises(ValueError):
        Stage(kind=StageKind.TRANSFER, placements=placements, gates=[(0, 1)])


def test_schedule_summary_counts():
    schedule = make_simple_schedule()
    assert schedule.num_stages == 3
    assert schedule.num_rydberg_stages == 2
    assert schedule.num_transfer_stages == 1
    assert schedule.num_transfer_operations == 3
    assert schedule.executed_gates == [(0, 1)]
    assert "S=3" in schedule.summary()


def test_idle_and_unshielded_counts():
    schedule = make_simple_schedule()
    # Stage 0: qubit 2 idles in the storage zone -> shielded.
    assert schedule.idle_qubits(0) == [2]
    assert schedule.unshielded_idle_count(0) == 0
    # Stage 2: all three qubits idle; qubits 0/1 sit in storage, qubit 2 too.
    assert schedule.unshielded_idle_count(2) == 0


def test_shuttling_distance():
    schedule = make_simple_schedule()
    # Between stage 0 and 1 qubit 1 moves from (0,4,+1) to (1,1,0).
    assert schedule.shuttling_distance_um(0) > 0
    # The last stage has no successor.
    assert schedule.shuttling_distance_um(2) == 0.0


def test_schedule_serialisation_roundtrip():
    schedule = make_simple_schedule()
    data = schedule.to_dict()
    assert data["num_qubits"] == 3
    assert data["stages"][0]["kind"] == "rydberg"
    text = schedule.to_json()
    parsed = json.loads(text)
    assert parsed["target_gates"] == [[0, 1]]
    assert len(parsed["stages"]) == 3
