"""Tests for the independent schedule validator."""

import pytest

from repro.arch import bottom_storage_layout, no_shielding_layout
from repro.core.problem import SchedulingProblem
from repro.core.schedule import QubitPlacement, Schedule
from repro.core.structured import StructuredScheduler
from repro.core.validator import ValidationError, validate_schedule
from repro.qec import steane_code
from repro.qec.state_prep import state_preparation_circuit


def valid_steane_schedule(architecture=None):
    architecture = architecture or bottom_storage_layout()
    prep = state_preparation_circuit(steane_code())
    problem = SchedulingProblem.from_circuit(architecture, prep)
    return StructuredScheduler().schedule(problem), prep


def test_valid_schedule_passes():
    schedule, _ = valid_steane_schedule()
    report = validate_schedule(schedule)
    assert report.ok


def test_missing_gate_detected():
    schedule, _ = valid_steane_schedule()
    absent = next(
        (a, b)
        for a in range(7)
        for b in range(a + 1, 7)
        if (a, b) not in schedule.target_gates
    )
    schedule.target_gates.append(absent)
    report = validate_schedule(schedule, raise_on_error=False)
    assert not report.ok
    assert any("never executed" in error for error in report.errors)


def test_repeated_target_gate_detected():
    schedule, _ = valid_steane_schedule()
    schedule.target_gates.append(schedule.target_gates[0])
    report = validate_schedule(schedule, raise_on_error=False)
    assert not report.ok
    assert any("fewer times" in error for error in report.errors)


def test_duplicate_gate_detected():
    schedule, _ = valid_steane_schedule()
    first_exec = next(stage for stage in schedule.stages if stage.is_execution)
    first_exec.gates.append(first_exec.gates[0])
    report = validate_schedule(schedule, raise_on_error=False)
    assert not report.ok


def test_out_of_bounds_placement_detected():
    schedule, _ = valid_steane_schedule()
    stage = schedule.stages[0]
    qubit = next(iter(stage.placements))
    stage.placements[qubit] = stage.placements[qubit].moved_to(x=999)
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("outside the architecture" in error for error in report.errors)


def test_position_collision_detected():
    schedule, _ = valid_steane_schedule()
    stage = schedule.stages[0]
    qubits = sorted(stage.placements)
    stage.placements[qubits[0]] = stage.placements[qubits[1]]
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("share position" in error for error in report.errors)


def test_slm_offset_detected():
    schedule, _ = valid_steane_schedule()
    stage = schedule.stages[0]
    idle = schedule.idle_qubits(0)[0]
    stage.placements[idle] = stage.placements[idle].moved_to(h=1)
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("non-zero offset" in error for error in report.errors)


def test_unshielded_idle_detected_on_zoned_layout():
    schedule, _ = valid_steane_schedule()
    stage = schedule.stages[0]
    idle = schedule.idle_qubits(0)[0]
    entangling_row = schedule.architecture.entangling_rows[0]
    stage.placements[idle] = QubitPlacement(x=7, y=entangling_row)
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("unshielded" in error for error in report.errors)
    # The same schedule is accepted when shielding is not required.
    relaxed = validate_schedule(schedule, require_shielding=False, raise_on_error=False)
    assert not any("unshielded" in error for error in relaxed.errors)


def test_unintended_interaction_detected():
    schedule, _ = valid_steane_schedule()
    stage = schedule.stages[0]
    gate_qubit = stage.gates[0][0]
    target = stage.placements[gate_qubit]
    idle = schedule.idle_qubits(0)[0]
    stage.placements[idle] = QubitPlacement(
        x=target.x, y=target.y, h=target.h - 1, v=target.v, in_aod=True, column=5, row=5
    )
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("would interact" in error for error in report.errors)


def test_aod_order_violation_detected():
    schedule, _ = valid_steane_schedule()
    stage = schedule.stages[0]
    aod = [q for q, p in stage.placements.items() if p.in_aod]
    a, b = aod[0], aod[1]
    pa, pb = stage.placements[a], stage.placements[b]
    # Swap the column indices of two AOD qubits -> order contradiction.
    stage.placements[a] = pa.moved_to(column=pb.column)
    stage.placements[b] = pb.moved_to(column=pa.column)
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("order" in error or "column" in error for error in report.errors)


def test_trap_type_change_in_execution_stage_detected():
    schedule, _ = valid_steane_schedule()
    exec_index = next(
        i
        for i, stage in enumerate(schedule.stages[:-1])
        if stage.is_execution
    )
    following = schedule.stages[exec_index + 1]
    aod_qubit = next(q for q, p in schedule.stages[exec_index].placements.items() if p.in_aod)
    placement = following.placements[aod_qubit]
    following.placements[aod_qubit] = QubitPlacement(x=placement.x, y=placement.y)
    report = validate_schedule(schedule, raise_on_error=False)
    assert not report.ok


def test_store_requires_site_centre():
    schedule, _ = valid_steane_schedule()
    transfer_index = next(
        i for i, stage in enumerate(schedule.stages) if not stage.is_execution
    )
    stage = schedule.stages[transfer_index]
    stored = stage.stored_qubits[0]
    stage.placements[stored] = stage.placements[stored].moved_to(h=1)
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("centre" in error or "center" in error for error in report.errors)


def test_transfer_marker_mismatch_detected():
    schedule, _ = valid_steane_schedule()
    transfer_index = next(
        i for i, stage in enumerate(schedule.stages) if not stage.is_execution
    )
    schedule.stages[transfer_index].stored_qubits = []
    report = validate_schedule(schedule, raise_on_error=False)
    assert any("stored qubits" in error for error in report.errors)


def test_raise_on_error():
    schedule, _ = valid_steane_schedule()
    schedule.target_gates.append(schedule.target_gates[0])
    with pytest.raises(ValidationError):
        validate_schedule(schedule)


def test_empty_schedule_rejected():
    report = validate_schedule(
        Schedule(
            architecture=no_shielding_layout(),
            num_qubits=1,
            stages=[],
            target_gates=[],
        ),
        raise_on_error=False,
    )
    assert not report.ok
