"""Tests for the ASCII schedule renderer."""

from repro.arch import bottom_storage_layout, reduced_layout
from repro.core.problem import SchedulingProblem
from repro.core.structured import StructuredScheduler
from repro.core.visualize import render_schedule, render_stage
from repro.qec import steane_code
from repro.qec.state_prep import state_preparation_circuit


def _schedule(architecture, num_qubits, gates):
    return StructuredScheduler().schedule(
        SchedulingProblem.from_gates(architecture, num_qubits, gates)
    )


def test_render_stage_contains_all_qubits():
    prep = state_preparation_circuit(steane_code())
    schedule = StructuredScheduler().schedule(
        SchedulingProblem.from_circuit(bottom_storage_layout(), prep)
    )
    text = render_stage(schedule, 0)
    assert "Rydberg beam" in text
    for qubit in range(prep.num_qubits):
        assert str(qubit) in text
    # Zone markers for entangling and storage rows.
    assert "E y=" in text
    assert "S y=" in text


def test_render_transfer_stage_mentions_transfers():
    prep = state_preparation_circuit(steane_code())
    schedule = StructuredScheduler().schedule(
        SchedulingProblem.from_circuit(bottom_storage_layout(), prep)
    )
    transfer_index = next(
        i for i, stage in enumerate(schedule.stages) if not stage.is_execution
    )
    text = render_stage(schedule, transfer_index)
    assert "transfer" in text
    assert "store" in text or "load" in text or "movement only" in text


def test_render_schedule_has_one_block_per_stage():
    schedule = _schedule(reduced_layout("bottom"), 3, [(0, 1), (1, 2)])
    text = render_schedule(schedule)
    assert text.count("stage ") == schedule.num_stages


def test_aod_qubits_are_starred():
    schedule = _schedule(bottom_storage_layout(), 2, [(0, 1)])
    text = render_stage(schedule, 0)
    assert "0*" in text and "1*" in text
