"""Tests for the SMT expression AST and constant folding."""

import pytest

from repro.smt import terms as T
from repro.smt import And, If, Iff, Implies, Not, Or, Distinct


def test_and_constant_folding():
    x = T.BoolVar("x")
    assert And() is T.TRUE
    assert And(True, True) is T.TRUE
    assert And(x, False) is T.FALSE
    assert And(x) is x
    assert And(True, x) is x


def test_or_constant_folding():
    x = T.BoolVar("x")
    assert Or() is T.FALSE
    assert Or(False, False) is T.FALSE
    assert Or(x, True) is T.TRUE
    assert Or(x) is x


def test_and_flattening():
    x, y, z = T.BoolVar("x"), T.BoolVar("y"), T.BoolVar("z")
    expr = And(And(x, y), z)
    assert isinstance(expr, T.AndExpr)
    assert len(expr.args) == 3


def test_not_double_negation():
    x = T.BoolVar("x")
    assert Not(Not(x)) is x
    assert Not(True) is T.FALSE
    assert Not(False) is T.TRUE


def test_implies_folding():
    x = T.BoolVar("x")
    assert Implies(False, x) is T.TRUE
    assert Implies(True, x) is x
    assert Implies(x, True) is T.TRUE


def test_iff_folding():
    x = T.BoolVar("x")
    assert Iff(x, x) is T.TRUE
    assert Iff(True, x) is x
    assert isinstance(Iff(False, x), T.NotExpr)


def test_if_over_integers():
    c = T.BoolVar("c")
    x = T.IntVar("x", 0, 3)
    expr = If(c, x, 0)
    assert isinstance(expr, T.IteIntExpr)
    assert If(True, x, 0) is x
    folded = If(False, x, 5)
    assert isinstance(folded, T.IntConst)
    assert folded.value == 5


def test_int_var_domain_validation():
    with pytest.raises(ValueError):
        T.IntVar("bad", 3, 2)


def test_bounds_propagation():
    x = T.IntVar("x", 0, 3)
    y = T.IntVar("y", -2, 2)
    assert (x + y).bounds() == (-2, 5)
    assert (x - y).bounds() == (-2, 5)
    assert abs(y).bounds() == (0, 2)
    assert abs(T.IntVar("p", 1, 4)).bounds() == (1, 4)
    assert abs(T.IntVar("n", -4, -1)).bounds() == (1, 4)
    assert (x + 1).bounds() == (1, 4)


def test_comparison_operators_build_atoms():
    x = T.IntVar("x", 0, 3)
    y = T.IntVar("y", 0, 3)
    assert isinstance(x == y, T.IntEq)
    assert isinstance(x < y, T.IntLt)
    assert isinstance(x <= y, T.IntLe)
    assert isinstance(x > y, T.IntLt)
    assert isinstance(x >= y, T.IntLe)
    ne = x != y
    assert isinstance(ne, T.NotExpr)


def test_bool_operator_overloads():
    a, b = T.BoolVar("a"), T.BoolVar("b")
    assert isinstance(a & b, T.AndExpr)
    assert isinstance(a | b, T.OrExpr)
    assert isinstance(~a, T.NotExpr)
    assert isinstance(a.iff(b), T.IffExpr)
    assert isinstance(a.implies(b), T.OrExpr)


def test_distinct():
    xs = [T.IntVar(f"x{i}", 0, 3) for i in range(3)]
    expr = Distinct(*xs)
    assert isinstance(expr, T.AndExpr)
    assert len(expr.args) == 3  # 3 choose 2 pairs
    assert Distinct(xs[0]) is T.TRUE


def test_free_variables():
    x = T.IntVar("x", 0, 3)
    b = T.BoolVar("b")
    expr = And(Implies(b, x < 2), x >= 0)
    variables = T.free_variables(expr)
    assert x in variables
    assert b in variables


def test_int_coercion_rejects_bool():
    x = T.IntVar("x", 0, 3)
    with pytest.raises(TypeError):
        x + True


def test_repr_smoke():
    x = T.IntVar("x", 0, 3)
    b = T.BoolVar("b")
    assert "x" in repr(x + 1)
    assert "b" in repr(And(b, x == 1))
