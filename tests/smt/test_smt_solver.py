"""End-to-end tests of the SMT solver (bit-blasting + CDCL)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import If, Iff, Implies, Not, Or, Solver, CheckResult
from repro.smt import at_most_one, exactly_one


def test_simple_int_constraints():
    solver = Solver()
    x = solver.int_var("x", 0, 7)
    y = solver.int_var("y", 0, 7)
    solver.add(x + 2 == y, x > 3)
    assert solver.check().is_sat()
    model = solver.model()
    assert model[y] == model[x] + 2
    assert model[x] > 3


def test_unsatisfiable_bounds():
    solver = Solver()
    x = solver.int_var("x", 0, 3)
    solver.add(x > 5)
    assert solver.check().is_unsat()


def test_negative_domains():
    solver = Solver()
    x = solver.int_var("x", -4, 4)
    y = solver.int_var("y", -4, 4)
    solver.add(x < -1, y == x + 3, y <= 1)
    assert solver.check().is_sat()
    model = solver.model()
    assert model[x] < -1
    assert model[y] == model[x] + 3


def test_absolute_difference():
    solver = Solver()
    x = solver.int_var("x", 0, 6)
    y = solver.int_var("y", 0, 6)
    solver.add(abs(x - y) < 2, x >= 4, y <= 3)
    assert solver.check().is_sat()
    model = solver.model()
    assert abs(model[x] - model[y]) < 2


def test_absolute_difference_unsat():
    solver = Solver()
    x = solver.int_var("x", 0, 6)
    y = solver.int_var("y", 0, 6)
    solver.add(abs(x - y) < 2, x >= 5, y <= 2)
    assert solver.check().is_unsat()


def test_boolean_and_integer_mix():
    solver = Solver()
    a = solver.bool_var("a")
    x = solver.int_var("x", 0, 3)
    solver.add(Implies(a, x == 3), Implies(Not(a), x == 0), x >= 1)
    assert solver.check().is_sat()
    model = solver.model()
    assert model[a] is True
    assert model[x] == 3


def test_iff_between_bool_and_comparison():
    solver = Solver()
    a = solver.bool_var("a")
    x = solver.int_var("x", 0, 5)
    solver.add(Iff(a, x > 2), Not(a))
    assert solver.check().is_sat()
    assert solver.model()[x] <= 2


def test_ite_integer():
    solver = Solver()
    a = solver.bool_var("a")
    x = solver.int_var("x", 0, 5)
    y = solver.int_var("y", 0, 5)
    solver.add(y == If(a, x + 1, x - 1), x == 3, a)
    assert solver.check().is_sat()
    assert solver.model()[y] == 4


def test_push_pop():
    solver = Solver()
    x = solver.int_var("x", 0, 5)
    solver.add(x > 1)
    solver.push()
    solver.add(x > 10)
    assert solver.check().is_unsat()
    solver.pop()
    assert solver.check().is_sat()
    assert solver.model()[x] > 1


def test_pop_without_push_raises():
    solver = Solver()
    with pytest.raises(RuntimeError):
        solver.pop()


def test_model_before_check_raises():
    solver = Solver()
    solver.int_var("x", 0, 1)
    with pytest.raises(RuntimeError):
        solver.model()


def test_model_lookup_by_name():
    solver = Solver()
    x = solver.int_var("position", 0, 4)
    solver.add(x == 2)
    assert solver.check().is_sat()
    assert solver.model()["position"] == 2
    assert solver.model().get("missing") is None


def test_model_evaluate_expression():
    solver = Solver()
    x = solver.int_var("x", 0, 4)
    y = solver.int_var("y", 0, 4)
    solver.add(x == 1, y == 3)
    assert solver.check().is_sat()
    model = solver.model()
    assert model.evaluate(x + y) == 4
    assert model.evaluate(x < y) is True
    assert model.evaluate(abs(x - y)) == 2


def test_unused_variable_gets_a_value():
    solver = Solver()
    x = solver.int_var("x", 2, 6)
    solver.add(Or(True))
    assert solver.check().is_sat()
    assert 2 <= solver.model()[x] <= 6


def test_statistics_reported():
    solver = Solver()
    x = solver.int_var("x", 0, 7)
    solver.add(x == 5)
    solver.check()
    stats = solver.statistics()
    assert stats["sat_variables"] > 0
    assert stats["sat_clauses"] > 0


def test_cardinality_exactly_one():
    solver = Solver()
    flags = [solver.bool_var(f"f{i}") for i in range(4)]
    solver.add(exactly_one(flags))
    solver.add(Not(flags[0]), Not(flags[1]), Not(flags[2]))
    assert solver.check().is_sat()
    assert solver.model()[flags[3]] is True


def test_cardinality_at_most_one_violation():
    solver = Solver()
    flags = [solver.bool_var(f"f{i}") for i in range(3)]
    solver.add(at_most_one(flags), flags[0], flags[1])
    assert solver.check().is_unsat()


def test_all_different_grid():
    # Mini "placement" instance: 3 qubits at different sites in a 1D row.
    solver = Solver()
    positions = [solver.int_var(f"p{i}", 0, 2) for i in range(3)]
    for i in range(3):
        for j in range(i + 1, 3):
            solver.add(Not(positions[i] == positions[j]))
    assert solver.check().is_sat()
    values = sorted(solver.model()[p] for p in positions)
    assert values == [0, 1, 2]


def test_all_different_too_many_is_unsat():
    solver = Solver()
    positions = [solver.int_var(f"p{i}", 0, 1) for i in range(3)]
    for i in range(3):
        for j in range(i + 1, 3):
            solver.add(Not(positions[i] == positions[j]))
    assert solver.check().is_unsat()


def test_check_result_helpers():
    assert CheckResult.SAT.is_sat()
    assert not CheckResult.SAT.is_unsat()
    assert CheckResult.UNSAT.is_unsat()
    assert not CheckResult.UNKNOWN.is_sat()


@settings(max_examples=40, deadline=None)
@given(
    lo1=st.integers(min_value=-6, max_value=3),
    span1=st.integers(min_value=0, max_value=6),
    lo2=st.integers(min_value=-6, max_value=3),
    span2=st.integers(min_value=0, max_value=6),
    c=st.integers(min_value=-5, max_value=5),
)
def test_property_linear_constraints_match_enumeration(lo1, span1, lo2, span2, c):
    """x + c == y with bounded domains: SMT result matches brute force."""
    hi1, hi2 = lo1 + span1, lo2 + span2
    expected = any(
        x + c == y for x in range(lo1, hi1 + 1) for y in range(lo2, hi2 + 1)
    )
    solver = Solver()
    x = solver.int_var("x", lo1, hi1)
    y = solver.int_var("y", lo2, hi2)
    solver.add(x + c == y)
    result = solver.check()
    assert result.is_sat() == expected
    if result.is_sat():
        model = solver.model()
        assert model[x] + c == model[y]
        assert lo1 <= model[x] <= hi1
        assert lo2 <= model[y] <= hi2


@settings(max_examples=40, deadline=None)
@given(
    bound=st.integers(min_value=0, max_value=5),
    xmin=st.integers(min_value=-4, max_value=4),
    ymin=st.integers(min_value=-4, max_value=4),
)
def test_property_abs_difference_matches_enumeration(bound, xmin, ymin):
    xmax, ymax = xmin + 3, ymin + 3
    expected = any(
        abs(x - y) < bound
        for x in range(xmin, xmax + 1)
        for y in range(ymin, ymax + 1)
    )
    solver = Solver()
    x = solver.int_var("x", xmin, xmax)
    y = solver.int_var("y", ymin, ymax)
    solver.add(abs(x - y) < bound)
    result = solver.check()
    assert result.is_sat() == expected
    if result.is_sat():
        model = solver.model()
        assert abs(model[x] - model[y]) < bound


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_property_random_order_constraints(data):
    """Chains of < / <= / == constraints agree with brute-force enumeration."""
    n = data.draw(st.integers(min_value=2, max_value=4))
    lo = data.draw(st.integers(min_value=-3, max_value=0))
    hi = data.draw(st.integers(min_value=1, max_value=4))
    ops = [data.draw(st.sampled_from(["<", "<=", "=="])) for _ in range(n - 1)]

    def holds(values):
        for i, op in enumerate(ops):
            a, b = values[i], values[i + 1]
            if op == "<" and not a < b:
                return False
            if op == "<=" and not a <= b:
                return False
            if op == "==" and not a == b:
                return False
        return True

    expected = any(
        holds(vals) for vals in itertools.product(range(lo, hi + 1), repeat=n)
    )
    solver = Solver()
    variables = [solver.int_var(f"v{i}", lo, hi) for i in range(n)]
    for i, op in enumerate(ops):
        a, b = variables[i], variables[i + 1]
        if op == "<":
            solver.add(a < b)
        elif op == "<=":
            solver.add(a <= b)
        else:
            solver.add(a == b)
    result = solver.check()
    assert result.is_sat() == expected
    if result.is_sat():
        model = solver.model()
        assert holds([model[v] for v in variables])
