"""Tests for the tableau (stabilizer) simulator."""

import pytest

from repro.circuit.circuit import Circuit
from repro.qec.pauli import PauliString
from repro.simulator import TableauSimulator


def test_initial_state_is_all_zero():
    simulator = TableauSimulator(3)
    for qubit in range(3):
        assert simulator.measure(qubit) == 0
    assert simulator.is_stabilized_by(PauliString.from_label("ZZZ"))


def test_x_flips_measurement():
    simulator = TableauSimulator(2)
    simulator.x(1)
    assert simulator.measure(0) == 0
    assert simulator.measure(1) == 1


def test_hadamard_gives_random_measurement_but_plus_state():
    simulator = TableauSimulator(1, seed=1)
    simulator.h(0)
    assert simulator.is_stabilized_by(PauliString.from_label("X"))
    assert simulator.expectation(PauliString.from_label("Z")) == 0


def test_bell_state_correlations():
    simulator = TableauSimulator(2, seed=3)
    simulator.h(0)
    simulator.cx(0, 1)
    assert simulator.is_stabilized_by(PauliString.from_label("XX"))
    assert simulator.is_stabilized_by(PauliString.from_label("ZZ"))
    first = simulator.measure(0)
    second = simulator.measure(1)
    assert first == second


def test_cz_creates_graph_state():
    simulator = TableauSimulator(2)
    simulator.h(0)
    simulator.h(1)
    simulator.cz(0, 1)
    assert simulator.is_stabilized_by(PauliString.from_label("XZ"))
    assert simulator.is_stabilized_by(PauliString.from_label("ZX"))


def test_s_gate_turns_plus_into_y_eigenstate():
    simulator = TableauSimulator(1)
    simulator.h(0)
    simulator.s(0)
    assert simulator.is_stabilized_by(PauliString.from_label("Y"))
    simulator.sdg(0)
    assert simulator.is_stabilized_by(PauliString.from_label("X"))


def test_expectation_values():
    simulator = TableauSimulator(1)
    assert simulator.expectation(PauliString.from_label("Z")) == 1
    simulator.x(0)
    assert simulator.expectation(PauliString.from_label("Z")) == -1
    assert simulator.expectation(PauliString.from_label("X")) == 0


def test_measurement_collapses_state():
    simulator = TableauSimulator(1, seed=11)
    simulator.h(0)
    outcome = simulator.measure(0)
    # After measurement the state is a computational-basis state.
    assert simulator.measure(0) == outcome
    expected = PauliString.from_label("Z", phase=2 if outcome else 0)
    assert simulator.is_stabilized_by(expected)


def test_forced_measurement_outcome():
    simulator = TableauSimulator(1)
    simulator.h(0)
    assert simulator.measure(0, forced_outcome=1) == 1
    assert simulator.measure(0) == 1


def test_measure_pauli_observable():
    simulator = TableauSimulator(2, seed=5)
    simulator.h(0)
    simulator.cx(0, 1)
    assert simulator.measure_pauli(PauliString.from_label("ZZ")) == 0
    assert simulator.measure_pauli(PauliString.from_label("XX")) == 0


def test_run_circuit():
    circuit = Circuit(3)
    circuit.h(0).cx(0, 1).cx(1, 2)
    simulator = TableauSimulator(3)
    simulator.run_circuit(circuit)
    assert simulator.is_stabilized_by(PauliString.from_label("XXX"))
    assert simulator.is_stabilized_by(PauliString.from_label("ZZI"))
    assert simulator.is_stabilized_by(PauliString.from_label("IZZ"))


def test_run_circuit_too_many_qubits():
    simulator = TableauSimulator(1)
    with pytest.raises(ValueError):
        simulator.run_circuit(Circuit(2))


def test_ghz_via_cz_and_hadamards():
    # CZ-based GHZ construction used by graph states.
    simulator = TableauSimulator(3)
    for qubit in range(3):
        simulator.h(qubit)
    simulator.cz(0, 1)
    simulator.cz(0, 2)
    simulator.h(1)
    simulator.h(2)
    assert simulator.is_stabilized_by(PauliString.from_label("XXX"))
    assert simulator.is_stabilized_by(PauliString.from_label("ZZI"))


def test_stabilizer_generators_property():
    simulator = TableauSimulator(2)
    generators = simulator.stabilizer_generators
    assert len(generators) == 2
    # Mutating the copies must not affect the simulator.
    generators[0].apply_x(0)
    assert simulator.is_stabilized_by(PauliString.from_label("ZI"))


def test_invalid_qubit_count():
    with pytest.raises(ValueError):
        TableauSimulator(0)
