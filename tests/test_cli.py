"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_codes_command(capsys):
    assert main(["codes"]) == 0
    output = capsys.readouterr().out
    assert "steane" in output
    assert "[[17,1,5]]" in output


def test_circuit_command(capsys):
    assert main(["circuit", "steane"]) == 0
    output = capsys.readouterr().out
    assert "CZ gates" in output
    assert "cz q" in output


def test_circuit_qasm_command(capsys):
    assert main(["circuit", "steane", "--qasm"]) == 0
    output = capsys.readouterr().out
    assert output.startswith("OPENQASM 2.0;")
    assert "cz q[" in output


def test_schedule_command(capsys):
    assert main(["schedule", "steane", "--layout", "bottom"]) == 0
    output = capsys.readouterr().out
    assert "ASP" in output
    assert "execution time" in output
    assert "stage lower bound" in output


def test_schedule_command_smt_strategy(capsys):
    """An SMT strategy with a harsh per-horizon budget still answers: the
    bisection strategy falls back on its structured upper-bound witness."""
    exit_code = main(
        ["schedule", "steane", "--layout", "none", "--strategy", "bisection",
         "--timeout", "2"]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "strategy=bisection" in output
    assert "bounds=[" in output


def test_schedule_render_command(capsys):
    assert main(["schedule", "steane", "--layout", "bottom", "--render"]) == 0
    output = capsys.readouterr().out
    assert "Rydberg beam" in output
    assert "E y=" in output


def test_schedule_json_command(capsys):
    assert main(["schedule", "steane", "--layout", "none", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["num_qubits"] == 7
    assert data["stages"]


def test_table1_command_restricted(capsys):
    assert main(["table1", "--codes", "steane"]) == 0
    output = capsys.readouterr().out
    assert "Steane" in output
    assert "No Shielding" in output


def test_figure4_command_restricted(capsys):
    assert main(["figure4", "--codes", "steane"]) == 0
    output = capsys.readouterr().out
    assert "dASP" in output


def test_explore_command(capsys):
    assert main(["explore", "steane"]) == 0
    output = capsys.readouterr().out
    assert "bottom storage" in output


def test_bench_command_exploration(capsys, tmp_path):
    output = tmp_path / "bench.json"
    assert (
        main(
            [
                "bench",
                "--suite",
                "exploration",
                "--codes",
                "steane",
                "--output",
                str(output),
            ]
        )
        == 0
    )
    text = capsys.readouterr().out
    assert "exploration/steane" in text
    assert "1/1 instances ok" in text
    document = json.loads(output.read_text())
    assert document["num_ok"] == 1


def test_bench_command_smt_single_strategy(capsys):
    assert (
        main(
            [
                "bench",
                "--suite",
                "smt",
                "--strategy",
                "linear",
                "--timeout",
                "300",
            ]
        )
        == 0
    )
    text = capsys.readouterr().out
    assert "smt/linear/bottom/chain-2" in text
    assert "smt/linear/none-shielded/ring-4" in text
    assert "65/65" not in text  # only one strategy was requested
    assert "13/13 instances ok" in text


def test_microbench_command_writes_comparison(tmp_path, capsys):
    output = tmp_path / "microbench.json"
    assert main(["microbench", "--output", str(output)]) == 0
    text = capsys.readouterr().out
    assert "flat faster than reference everywhere" in text
    document = json.loads(output.read_text())
    assert document["backends"] == ["flat", "reference"]
    assert document["candidate_faster_everywhere"] is True
    assert document["flat_faster_everywhere"] is True  # legacy alias
    assert {cell["flat"]["result"] for cell in document["cells"]} == {"sat", "unsat"}


def test_bench_command_schema_version_2_strips_portfolio_fields(tmp_path, capsys):
    output = tmp_path / "v2.json"
    assert (
        main(
            [
                "bench",
                "--suite",
                "smt",
                "--strategy",
                "portfolio",
                "--timeout",
                "300",
                "--output",
                str(output),
                "--schema-version",
                "2",
            ]
        )
        == 0
    )
    capsys.readouterr()
    document = json.loads(output.read_text())
    assert document["version"] == 2
    assert all("winner" not in entry["payload"] for entry in document["results"])


def test_bounds_command_prints_the_certificate_table(capsys):
    assert main(["bounds", "triangle", "--layout", "bottom"]) == 0
    text = capsys.readouterr().out
    assert "gate-load" in text
    assert "clique" in text
    assert "witness qubits (0, 1, 2)" in text
    assert "analytic lower bound: 4   (source: clique+transfer)" in text
    assert "certified interval: [4, 7]" in text


def test_bounds_command_shielded_storage_less_reports_the_airborne_witness(capsys):
    assert main(["bounds", "ring-4", "--layout", "none", "--shielding", "on"]) == 0
    text = capsys.readouterr().out
    assert "structured upper bound: 2 stages   (source: structured-airborne" in text
    assert "width 0" in text


def test_bounds_command_reports_open_intervals(capsys):
    assert main(["bounds", "triangle", "--layout", "none", "--shielding", "on"]) == 0
    text = capsys.readouterr().out
    assert "structured upper bound: none (open search interval)" in text


def test_bounds_command_json_covers_codes(capsys):
    assert main(["bounds", "steane", "--layout", "bottom", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["instance"] == "steane"
    assert document["shielding"] is True
    assert document["lower_bound"]["certificates"]["gate-load"] >= 1
    assert document["lower_bound"]["total"] >= 1
    assert document["upper_bound"]["source"].startswith("structured-")
    assert document["upper_bound"]["stages"] >= document["lower_bound"]["total"]


def test_unknown_code_rejected():
    with pytest.raises(SystemExit):
        main(["circuit", "unknown-code"])


def test_parser_has_version():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--version"])


def test_loadtest_command_reports_hit_rate_and_writes_v8(tmp_path, capsys):
    output = tmp_path / "loadtest.json"
    exit_code = main(
        ["loadtest", "--requests", "6", "--concurrency", "2", "--jobs", "2",
         "--seed", "5", "--instances", "triangle", "--min-hit-rate", "0.01",
         "--output", str(output)]
    )
    text = capsys.readouterr().out
    assert exit_code == 0
    assert "cache hit-rate" in text
    assert "latency p50" in text
    document = json.loads(output.read_text(encoding="utf-8"))
    assert document["version"] == 8
    payload = document["results"][0]["payload"]
    assert payload["cache_hit_rate"] > 0
    assert payload["latency_p50_seconds"] <= payload["latency_p99_seconds"]


def test_loadtest_command_enforces_min_hit_rate(capsys):
    # A single request can never hit the cache, so any positive floor trips.
    exit_code = main(
        ["loadtest", "--requests", "1", "--jobs", "1",
         "--instances", "single-gate", "--min-hit-rate", "0.5"]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "below the --min-hit-rate floor" in captured.err


def test_bench_command_dedupe_drops_isomorphic_cells(capsys):
    # The stock smoke matrix has no isomorphic duplicates, so --dedupe
    # must be a no-op on it: same cells, same results, nothing dropped.
    exit_code = main(
        ["bench", "--suite", "smt", "--strategy", "bisection", "--dedupe"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "dedupe: dropped" not in captured.err


def test_serve_command_parses_arguments():
    parser = build_parser()
    args = parser.parse_args(
        ["serve", "--port", "9000", "--jobs", "3", "--queue-limit", "5",
         "--strategy", "linear", "--hard-timeout", "10"]
    )
    assert args.command == "serve"
    assert args.port == 9000
    assert args.jobs == 3
    assert args.queue_limit == 5
    assert args.strategy == "linear"
    assert args.hard_timeout == 10.0
