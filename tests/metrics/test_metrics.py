"""Tests for the execution-time model and the ASP."""

import math

import pytest

from repro.arch import bottom_storage_layout, no_shielding_layout
from repro.core.problem import SchedulingProblem
from repro.core.structured import StructuredScheduler
from repro.metrics import approximate_success_probability, execution_time
from repro.qec import steane_code, get_code
from repro.qec.state_prep import state_preparation_circuit


def _structured(architecture, prep):
    return StructuredScheduler().schedule(
        SchedulingProblem.from_circuit(architecture, prep)
    )


@pytest.fixture(scope="module")
def steane_setup():
    code = steane_code()
    prep = state_preparation_circuit(code)
    schedule = _structured(bottom_storage_layout(), prep)
    return prep, schedule


def test_execution_time_breakdown(steane_setup):
    prep, schedule = steane_setup
    breakdown = execution_time(schedule, prep)
    assert breakdown.rydberg_us == pytest.approx(
        schedule.num_rydberg_stages * 0.27
    )
    # Every transfer stage in this schedule both stores and loads (two
    # 200 us batches) except possibly boundary stages.
    assert breakdown.transfer_us >= schedule.num_transfer_stages * 200.0
    assert breakdown.shuttling_us > 0
    assert breakdown.single_qubit_us > 0
    assert breakdown.total_us == pytest.approx(
        breakdown.rydberg_us
        + breakdown.transfer_us
        + breakdown.shuttling_us
        + breakdown.single_qubit_us
    )
    assert breakdown.total_ms == pytest.approx(breakdown.total_us / 1000)
    assert len(breakdown.per_stage_us) == schedule.num_stages


def test_execution_time_without_circuit_excludes_single_qubit_part(steane_setup):
    prep, schedule = steane_setup
    with_circuit = execution_time(schedule, prep)
    without_circuit = execution_time(schedule)
    assert without_circuit.single_qubit_us == 0
    assert without_circuit.total_us < with_circuit.total_us


def test_asp_factors_multiply(steane_setup):
    prep, schedule = steane_setup
    breakdown = approximate_success_probability(schedule, prep)
    assert breakdown.asp == pytest.approx(
        breakdown.cz_factor
        * breakdown.rydberg_idle_factor
        * breakdown.single_qubit_factor
        * breakdown.transfer_factor
        * breakdown.decoherence_factor
    )
    assert 0 < breakdown.asp < 1


def test_asp_cz_factor_matches_gate_count(steane_setup):
    prep, schedule = steane_setup
    breakdown = approximate_success_probability(schedule, prep)
    assert breakdown.cz_factor == pytest.approx(0.995**prep.num_cz_gates)


def test_asp_shielded_layout_has_no_rydberg_idle_penalty(steane_setup):
    prep, schedule = steane_setup
    breakdown = approximate_success_probability(schedule, prep)
    assert breakdown.unshielded_idle_count == 0
    assert breakdown.rydberg_idle_factor == pytest.approx(1.0)


def test_asp_unshielded_layout_pays_idle_penalty():
    code = get_code("steane")
    prep = state_preparation_circuit(code)
    schedule = _structured(no_shielding_layout(), prep)
    breakdown = approximate_success_probability(schedule, prep)
    assert breakdown.unshielded_idle_count > 0
    assert breakdown.rydberg_idle_factor == pytest.approx(
        0.998**breakdown.unshielded_idle_count
    )


def test_asp_transfer_factor(steane_setup):
    prep, schedule = steane_setup
    breakdown = approximate_success_probability(schedule, prep)
    assert breakdown.transfer_factor == pytest.approx(
        0.999**schedule.num_transfer_operations
    )


def test_asp_decoherence_factor_consistent_with_idle_time(steane_setup):
    prep, schedule = steane_setup
    breakdown = approximate_success_probability(schedule, prep)
    assert breakdown.decoherence_factor == pytest.approx(
        math.exp(-breakdown.idle_time_us / 1e6)
    )
    # The idle time is bounded by (num qubits) x (total time).
    assert breakdown.idle_time_us <= prep.num_qubits * breakdown.timing.total_us


def test_shielding_improves_asp_for_every_code():
    """The paper's headline claim, checked per code on the metrics level."""
    for code_name in ("steane", "hamming", "honeycomb"):
        code = get_code(code_name)
        prep = state_preparation_circuit(code)
        shielded = _structured(bottom_storage_layout(), prep)
        unshielded = _structured(no_shielding_layout(), prep)
        asp_shielded = approximate_success_probability(shielded, prep).asp
        asp_unshielded = approximate_success_probability(unshielded, prep).asp
        assert asp_shielded > asp_unshielded
