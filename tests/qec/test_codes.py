"""Tests for the stabilizer-code types and the six evaluation codes."""

import numpy as np
import pytest

from repro.qec import gf2
from repro.qec.codes import (
    available_codes,
    get_code,
    hamming_code,
    honeycomb_code,
    shor_code,
    steane_code,
    surface_code,
    tetrahedral_code,
)
from repro.qec.pauli import PauliString
from repro.qec.stabilizer_code import CSSCode, StabilizerCode


# --------------------------------------------------------------------------- #
# StabilizerCode basics
# --------------------------------------------------------------------------- #
def test_stabilizer_code_requires_commuting_generators():
    with pytest.raises(ValueError):
        StabilizerCode([PauliString.from_label("XI"), PauliString.from_label("ZI")])


def test_stabilizer_code_requires_independent_generators():
    with pytest.raises(ValueError):
        StabilizerCode(
            [
                PauliString.from_label("XX"),
                PauliString.from_label("XX"),
            ]
        )


def test_stabilizer_code_requires_same_size():
    with pytest.raises(ValueError):
        StabilizerCode([PauliString.from_label("X"), PauliString.from_label("XX")])


def test_stabilizer_code_parameters():
    # Two-qubit phase-flip repetition code: stabilizer XX.
    code = StabilizerCode([PauliString.from_label("XX")], name="repetition")
    assert code.num_qubits == 2
    assert code.num_logical_qubits == 1
    assert code.parameters() == (2, 1, None)
    assert "repetition" in repr(code)


def test_css_requires_orthogonal_checks():
    hx = np.array([[1, 1, 0]], dtype=np.uint8)
    hz = np.array([[1, 0, 0]], dtype=np.uint8)
    with pytest.raises(ValueError):
        CSSCode(hx, hz)


def test_css_drops_dependent_rows():
    hx = np.array([[1, 1, 0, 0], [1, 1, 0, 0]], dtype=np.uint8)
    hz = np.array([[0, 0, 1, 1]], dtype=np.uint8)
    code = CSSCode(hx, hz)
    assert code.num_qubits == 4
    assert len(code.x_stabilizers) == 1


# --------------------------------------------------------------------------- #
# The six evaluation codes: parameters
# --------------------------------------------------------------------------- #
CODE_PARAMETERS = {
    "steane": (7, 1, 3),
    "surface": (9, 1, 3),
    "shor": (9, 1, 3),
    "hamming": (15, 7, 3),
    "tetrahedral": (15, 1, 3),
    "honeycomb": (17, 1, 5),
}


@pytest.mark.parametrize("name", list(CODE_PARAMETERS))
def test_code_parameters(name):
    code = get_code(name)
    n, k, d = CODE_PARAMETERS[name]
    assert code.num_qubits == n
    assert code.num_logical_qubits == k
    assert code.declared_distance == d


@pytest.mark.parametrize("name", list(CODE_PARAMETERS))
def test_stabilizers_commute_and_are_independent(name):
    code = get_code(name)
    stabilizers = code.stabilizers
    for i, a in enumerate(stabilizers):
        for b in stabilizers[i + 1 :]:
            assert a.commutes_with(b)
    matrix = np.vstack([s.symplectic for s in stabilizers])
    assert gf2.rank(matrix) == len(stabilizers)


@pytest.mark.parametrize("name", list(CODE_PARAMETERS))
def test_logical_z_operators(name):
    code = get_code(name)
    logicals = code.logical_z_operators()
    assert len(logicals) == code.num_logical_qubits
    for logical in logicals:
        # Logical operators commute with every stabilizer...
        for stabilizer in code.stabilizers:
            assert logical.commutes_with(stabilizer)
        # ...and are not themselves stabilizers.
        matrix = np.vstack([s.symplectic for s in code.stabilizers])
        assert not gf2.row_space_contains(matrix, logical.symplectic)


@pytest.mark.parametrize("name", list(CODE_PARAMETERS))
def test_logical_x_anticommutes_with_logical_z(name):
    code = get_code(name)
    logical_x = code.logical_x_operators()
    logical_z = code.logical_z_operators()
    assert len(logical_x) == len(logical_z) == code.num_logical_qubits
    # The anticommutation matrix between X and Z logicals must be
    # non-degenerate (full rank), i.e. they genuinely span k logical qubits.
    anticommutation = np.array(
        [
            [0 if x.commutes_with(z) else 1 for z in logical_z]
            for x in logical_x
        ],
        dtype=np.uint8,
    )
    assert gf2.rank(anticommutation) == code.num_logical_qubits


@pytest.mark.parametrize(
    "factory, expected_distance",
    [
        (steane_code, 3),
        (surface_code, 3),
        (shor_code, 3),
        (hamming_code, 3),
        (tetrahedral_code, 3),
    ],
)
def test_small_code_distances(factory, expected_distance):
    code = factory()
    assert code.compute_distance() == expected_distance


def test_honeycomb_distance_is_five():
    # Exhaustive over the 2^9 + 2^9 kernel elements; a few seconds.
    code = honeycomb_code()
    assert code.compute_distance() == 5


def test_zero_state_stabilizer_count():
    for name in available_codes():
        code = get_code(name)
        generators = code.zero_state_stabilizers()
        assert len(generators) == code.num_qubits
        for i, a in enumerate(generators):
            for b in generators[i + 1 :]:
                assert a.commutes_with(b)


def test_get_code_unknown_name():
    with pytest.raises(KeyError):
        get_code("does-not-exist")


def test_available_codes_order_matches_table1():
    assert available_codes() == [
        "steane",
        "surface",
        "shor",
        "hamming",
        "tetrahedral",
        "honeycomb",
    ]


def test_steane_is_self_dual():
    code = steane_code()
    assert np.array_equal(code.hx, code.hz)


def test_shor_block_structure():
    code = shor_code()
    assert len(code.x_stabilizers) == 2
    assert len(code.z_stabilizers) == 6
    for stabilizer in code.x_stabilizers:
        assert stabilizer.weight == 6
    for stabilizer in code.z_stabilizers:
        assert stabilizer.weight == 2
