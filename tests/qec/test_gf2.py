"""Tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qec import gf2


def random_matrix_strategy(max_dim=6):
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda rows: st.integers(min_value=1, max_value=max_dim).flatmap(
            lambda cols: st.lists(
                st.lists(st.integers(min_value=0, max_value=1), min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            )
        )
    )


def test_rref_identity():
    eye = np.eye(3, dtype=np.uint8)
    reduced, pivots = gf2.rref(eye)
    assert np.array_equal(reduced, eye)
    assert pivots == [0, 1, 2]


def test_rref_dependent_rows():
    matrix = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
    _, pivots = gf2.rref(matrix)
    assert len(pivots) == 2


def test_rank():
    assert gf2.rank(np.zeros((3, 4))) == 0
    assert gf2.rank(np.eye(4)) == 4
    assert gf2.rank(np.array([[1, 0, 1], [1, 0, 1]])) == 1


def test_rank_empty():
    assert gf2.rank(np.zeros((0, 5))) == 0


def test_nullspace_orthogonality():
    matrix = np.array([[1, 1, 0, 0], [0, 0, 1, 1]], dtype=np.uint8)
    kernel = gf2.nullspace(matrix)
    assert kernel.shape[0] == 2
    assert not ((matrix @ kernel.T) % 2).any()


def test_nullspace_full_rank_square():
    kernel = gf2.nullspace(np.eye(3, dtype=np.uint8))
    assert kernel.shape[0] == 0


def test_row_space_contains():
    matrix = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
    assert gf2.row_space_contains(matrix, [1, 0, 1])
    assert gf2.row_space_contains(matrix, [0, 0, 0])
    assert not gf2.row_space_contains(matrix, [1, 0, 0])


def test_solve_simple():
    matrix = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
    rhs = np.array([1, 0, 1], dtype=np.uint8)
    solution = gf2.solve(matrix, rhs)
    assert solution is not None
    assert np.array_equal((solution @ matrix) % 2, rhs)


def test_solve_infeasible():
    matrix = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
    assert gf2.solve(matrix, np.array([1, 0, 0], dtype=np.uint8)) is None


def test_solve_dimension_mismatch():
    with pytest.raises(ValueError):
        gf2.solve(np.eye(2, dtype=np.uint8), np.array([1, 0, 0], dtype=np.uint8))


def test_independent_rows():
    matrix = np.array([[1, 1, 0], [1, 1, 0], [0, 0, 1]], dtype=np.uint8)
    independent = gf2.independent_rows(matrix)
    assert independent.shape == (2, 3)
    assert gf2.rank(independent) == 2


def test_independent_rows_all_zero():
    result = gf2.independent_rows(np.zeros((3, 4), dtype=np.uint8))
    assert result.shape == (0, 4)


@settings(max_examples=60, deadline=None)
@given(random_matrix_strategy())
def test_property_rank_nullity(matrix_rows):
    matrix = np.array(matrix_rows, dtype=np.uint8)
    kernel = gf2.nullspace(matrix)
    # Rank-nullity theorem over GF(2).
    assert gf2.rank(matrix) + kernel.shape[0] == matrix.shape[1]
    if kernel.size:
        assert not ((matrix @ kernel.T) % 2).any()


@settings(max_examples=60, deadline=None)
@given(random_matrix_strategy(), st.data())
def test_property_solve_roundtrip(matrix_rows, data):
    matrix = np.array(matrix_rows, dtype=np.uint8)
    coeffs = np.array(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=1),
                min_size=matrix.shape[0],
                max_size=matrix.shape[0],
            )
        ),
        dtype=np.uint8,
    )
    rhs = (coeffs @ matrix) % 2
    solution = gf2.solve(matrix, rhs)
    assert solution is not None
    assert np.array_equal((solution @ matrix) % 2, rhs)
