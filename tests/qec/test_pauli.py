"""Tests for Pauli-string algebra and Clifford conjugation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.qec.pauli import PauliString


def pauli_strategy(num_qubits=4):
    return st.tuples(
        st.lists(st.integers(0, 1), min_size=num_qubits, max_size=num_qubits),
        st.lists(st.integers(0, 1), min_size=num_qubits, max_size=num_qubits),
        st.integers(0, 3),
    ).map(lambda t: PauliString(np.array(t[0]), np.array(t[1]), t[2]))


# --------------------------------------------------------------------------- #
# Construction and representation
# --------------------------------------------------------------------------- #
def test_identity():
    identity = PauliString.identity(3)
    assert identity.weight == 0
    assert identity.is_identity()
    assert identity.to_label() == "+III"


def test_from_label_roundtrip():
    pauli = PauliString.from_label("XZIY")
    assert pauli.to_label() == "+XZIY"
    assert pauli.weight == 3
    assert pauli.support == [0, 1, 3]


def test_from_label_invalid_character():
    with pytest.raises(ValueError):
        PauliString.from_label("XQ")


def test_from_support():
    pauli = PauliString.from_support(5, "Z", [1, 3])
    assert pauli.to_label() == "+IZIZI"
    with pytest.raises(ValueError):
        PauliString.from_support(5, "Q", [0])
    with pytest.raises(ValueError):
        PauliString.from_support(5, "X", [7])


def test_mismatched_xz_lengths_rejected():
    with pytest.raises(ValueError):
        PauliString(np.array([1, 0]), np.array([1]))


def test_symplectic_vector():
    pauli = PauliString.from_label("XZ")
    assert np.array_equal(pauli.symplectic, [1, 0, 0, 1])


# --------------------------------------------------------------------------- #
# Multiplication and commutation
# --------------------------------------------------------------------------- #
def test_multiplication_xz():
    x = PauliString.from_label("X")
    z = PauliString.from_label("Z")
    xz = x * z
    # X * Z = -i Y.
    assert xz.to_label() == "-iY"
    zx = z * x
    assert zx.to_label() == "+iY"


def test_multiplication_inverse():
    pauli = PauliString.from_label("XYZ")
    product = pauli * pauli
    assert product.is_identity()
    assert product.phase == 0


def test_commutation_single_qubit():
    x = PauliString.from_label("X")
    z = PauliString.from_label("Z")
    y = PauliString.from_label("Y")
    assert not x.commutes_with(z)
    assert not x.commutes_with(y)
    assert x.commutes_with(x)


def test_commutation_multi_qubit():
    a = PauliString.from_label("XX")
    b = PauliString.from_label("ZZ")
    assert a.commutes_with(b)
    c = PauliString.from_label("ZI")
    assert not a.commutes_with(c)


def test_size_mismatch_raises():
    with pytest.raises(ValueError):
        PauliString.from_label("X") * PauliString.from_label("XX")
    with pytest.raises(ValueError):
        PauliString.from_label("X").commutes_with(PauliString.from_label("XX"))


def test_equality_and_hash():
    a = PauliString.from_label("XZ")
    b = PauliString.from_label("XZ")
    c = PauliString.from_label("ZX")
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert a != "XZ"


# --------------------------------------------------------------------------- #
# Clifford conjugation
# --------------------------------------------------------------------------- #
def test_hadamard_conjugation():
    pauli = PauliString.from_label("X")
    pauli.apply_h(0)
    assert pauli.to_label() == "+Z"
    pauli = PauliString.from_label("Y")
    pauli.apply_h(0)
    assert pauli.to_label() == "-Y"


def test_s_conjugation():
    pauli = PauliString.from_label("X")
    pauli.apply_s(0)
    assert pauli.to_label() == "+Y"
    pauli.apply_s(0)
    assert pauli.to_label() == "-X"
    pauli = PauliString.from_label("Z")
    pauli.apply_s(0)
    assert pauli.to_label() == "+Z"


def test_sdg_is_inverse_of_s():
    pauli = PauliString.from_label("Y")
    pauli.apply_s(0)
    pauli.apply_sdg(0)
    assert pauli.to_label() == "+Y"


def test_pauli_conjugation():
    pauli = PauliString.from_label("X")
    pauli.apply_z(0)
    assert pauli.to_label() == "-X"
    pauli.apply_x(0)
    assert pauli.to_label() == "-X"
    pauli = PauliString.from_label("Z")
    pauli.apply_x(0)
    assert pauli.to_label() == "-Z"


def test_cz_conjugation():
    pauli = PauliString.from_label("XI")
    pauli.apply_cz(0, 1)
    assert pauli.to_label() == "+XZ"
    pauli = PauliString.from_label("XX")
    pauli.apply_cz(0, 1)
    assert pauli.to_label() == "+YY"
    pauli = PauliString.from_label("ZZ")
    pauli.apply_cz(0, 1)
    assert pauli.to_label() == "+ZZ"


def test_cx_conjugation():
    pauli = PauliString.from_label("XI")
    pauli.apply_cx(0, 1)
    assert pauli.to_label() == "+XX"
    pauli = PauliString.from_label("IZ")
    pauli.apply_cx(0, 1)
    assert pauli.to_label() == "+ZZ"
    pauli = PauliString.from_label("ZI")
    pauli.apply_cx(0, 1)
    assert pauli.to_label() == "+ZI"


@settings(max_examples=80, deadline=None)
@given(pauli_strategy(), pauli_strategy())
def test_property_commutation_symmetry(a, b):
    assert a.commutes_with(b) == b.commutes_with(a)


@settings(max_examples=80, deadline=None)
@given(pauli_strategy(), pauli_strategy())
def test_property_product_commutation_consistency(a, b):
    """a*b = ±(b*a); + exactly when the operators commute."""
    ab = a * b
    ba = b * a
    assert np.array_equal(ab.x, ba.x)
    assert np.array_equal(ab.z, ba.z)
    if a.commutes_with(b):
        assert ab.phase == ba.phase
    else:
        assert (ab.phase - ba.phase) % 4 == 2


@settings(max_examples=60, deadline=None)
@given(pauli_strategy())
def test_property_clifford_conjugation_preserves_weight_parity_relations(pauli):
    """Conjugating twice by H or by S/S† returns the original operator."""
    original = pauli.copy()
    pauli.apply_h(0)
    pauli.apply_h(0)
    assert pauli == original
    pauli.apply_s(1)
    pauli.apply_sdg(1)
    assert pauli == original


@settings(max_examples=60, deadline=None)
@given(pauli_strategy(), pauli_strategy())
def test_property_conjugation_is_homomorphism(a, b):
    """U(ab)U† = (UaU†)(UbU†) for U = H_0, CZ_{1,2}."""
    product = a * b
    a_conj, b_conj, product_conj = a.copy(), b.copy(), product.copy()
    for operator in (a_conj, b_conj, product_conj):
        operator.apply_h(0)
        operator.apply_cz(1, 2)
    assert (a_conj * b_conj) == product_conj
