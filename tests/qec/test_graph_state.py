"""Tests for the graph-state reduction and state-preparation circuits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.gates import GateKind
from repro.qec.codes import available_codes, get_code, steane_code
from repro.qec.graph_state import stabilizer_state_to_graph_state
from repro.qec.pauli import PauliString
from repro.qec.state_prep import state_preparation_circuit
from repro.qec.verification import prepares_logical_zero, stabilized_violations
from repro.simulator.tableau import TableauSimulator


# --------------------------------------------------------------------------- #
# Direct graph-state reductions
# --------------------------------------------------------------------------- #
def test_plus_states_give_empty_graph():
    # |+>^3 is stabilized by X_i; it already is the empty graph state.
    generators = [PauliString.from_support(3, "X", [i]) for i in range(3)]
    result = stabilizer_state_to_graph_state(generators)
    assert result.edges == []
    assert result.local_corrections == {}


def test_zero_states_give_hadamards():
    # |0>^2 is stabilized by Z_i: graph is empty, every qubit needs an H.
    generators = [PauliString.from_support(2, "Z", [i]) for i in range(2)]
    result = stabilizer_state_to_graph_state(generators)
    assert result.edges == []
    assert set(result.hadamard_qubits) == {0, 1}


def test_bell_state_reduction():
    # Bell state stabilized by XX and ZZ -> a single edge plus one Hadamard.
    generators = [PauliString.from_label("XX"), PauliString.from_label("ZZ")]
    result = stabilizer_state_to_graph_state(generators)
    assert len(result.edges) == 1
    circuit = _expand(result)
    simulator = TableauSimulator(2)
    simulator.run_circuit(circuit)
    assert simulator.is_stabilized_by(PauliString.from_label("XX"))
    assert simulator.is_stabilized_by(PauliString.from_label("ZZ"))


def test_ghz_state_reduction():
    generators = [
        PauliString.from_label("XXX"),
        PauliString.from_label("ZZI"),
        PauliString.from_label("IZZ"),
    ]
    result = stabilizer_state_to_graph_state(generators)
    circuit = _expand(result)
    simulator = TableauSimulator(3)
    simulator.run_circuit(circuit)
    for generator in generators:
        assert simulator.is_stabilized_by(generator)


def test_negative_sign_generators_are_honoured():
    # The state -ZZ, XX is the odd Bell state |01>+|10> (up to normalisation).
    minus_zz = PauliString.from_label("ZZ", phase=2)
    generators = [PauliString.from_label("XX"), minus_zz]
    result = stabilizer_state_to_graph_state(generators)
    circuit = _expand(result)
    simulator = TableauSimulator(2)
    simulator.run_circuit(circuit)
    assert simulator.is_stabilized_by(minus_zz)
    assert not simulator.is_stabilized_by(PauliString.from_label("ZZ"))


def test_y_type_generator_needs_phase_correction():
    # Single-qubit state stabilized by Y: needs an S-type correction.
    generators = [PauliString.from_label("Y")]
    result = stabilizer_state_to_graph_state(generators)
    circuit = _expand(result)
    simulator = TableauSimulator(1)
    simulator.run_circuit(circuit)
    assert simulator.is_stabilized_by(PauliString.from_label("Y"))


def test_wrong_generator_count_rejected():
    with pytest.raises(ValueError):
        stabilizer_state_to_graph_state([PauliString.from_label("XX")])


def test_noncommuting_generators_rejected():
    with pytest.raises(ValueError):
        stabilizer_state_to_graph_state(
            [PauliString.from_label("XI"), PauliString.from_label("ZI")]
        )


def test_dependent_generators_rejected():
    with pytest.raises(ValueError):
        stabilizer_state_to_graph_state(
            [
                PauliString.from_label("XX"),
                PauliString.from_label("XX"),
            ]
        )


def test_adjacency_matrix_is_symmetric():
    code = steane_code()
    result = stabilizer_state_to_graph_state(code.zero_state_stabilizers())
    adjacency = result.adjacency_matrix()
    assert np.array_equal(adjacency, adjacency.T)
    assert not adjacency.diagonal().any()
    assert adjacency.sum() == 2 * result.num_cz_gates


def _expand(decomposition):
    """Expand a GraphStateDecomposition into a flat circuit."""
    from repro.circuit.state_prep_circuit import StatePrepCircuit

    return StatePrepCircuit(
        num_qubits=decomposition.num_qubits,
        cz_gates=list(decomposition.edges),
        local_corrections=dict(decomposition.local_corrections),
    ).to_circuit()


# --------------------------------------------------------------------------- #
# End-to-end state preparation for the evaluation codes
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", available_codes())
def test_state_prep_prepares_logical_zero(name):
    code = get_code(name)
    prep = state_preparation_circuit(code)
    assert prepares_logical_zero(prep, code), stabilized_violations(prep, code)


@pytest.mark.parametrize("name", available_codes())
def test_state_prep_structure(name):
    code = get_code(name)
    prep = state_preparation_circuit(code)
    assert prep.num_qubits == code.num_qubits
    assert prep.num_cz_gates > 0
    # Every CZ operand is a valid qubit and no self-loops exist.
    for a, b in prep.cz_gates:
        assert 0 <= a < b < code.num_qubits


def test_steane_cz_count_matches_paper():
    # Table I reports 9 CZ gates for the Steane code.
    prep = state_preparation_circuit(steane_code())
    assert prep.num_cz_gates == 9


@pytest.mark.parametrize(
    "name, paper_count, tolerance",
    [
        ("steane", 9, 0),
        ("surface", 8, 2),
        ("shor", 10, 2),
        ("hamming", 28, 2),
        ("tetrahedral", 28, 2),
    ],
)
def test_cz_counts_close_to_paper(name, paper_count, tolerance):
    """Graph-state extraction is not unique, so allow a small deviation."""
    prep = state_preparation_circuit(get_code(name))
    assert abs(prep.num_cz_gates - paper_count) <= tolerance


def test_corrupted_circuit_fails_verification():
    code = steane_code()
    prep = state_preparation_circuit(code)
    # Drop one CZ gate: the state is no longer the logical zero.
    broken = prep.to_circuit()
    from repro.circuit.circuit import Circuit

    gates = [g for g in broken.gates]
    removed = next(i for i, g in enumerate(gates) if g.kind is GateKind.CZ)
    corrupted = Circuit(broken.num_qubits, gates[:removed] + gates[removed + 1 :])
    assert not prepares_logical_zero(corrupted, code)
    assert stabilized_violations(corrupted, code)


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_property_random_graph_states_roundtrip(data):
    """Building a random graph state and reducing its stabilizers recovers
    a circuit that prepares the same state."""
    n = data.draw(st.integers(min_value=2, max_value=5))
    possible_edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    edges = [e for e in possible_edges if data.draw(st.booleans())]
    # Stabilizers of the graph state: K_i = X_i prod_{j in N(i)} Z_j.
    generators = []
    for i in range(n):
        x = np.zeros(n, dtype=np.uint8)
        z = np.zeros(n, dtype=np.uint8)
        x[i] = 1
        for a, b in edges:
            if a == i:
                z[b] = 1
            elif b == i:
                z[a] = 1
        generators.append(PauliString(x, z))
    result = stabilizer_state_to_graph_state(generators)
    circuit = _expand(result)
    simulator = TableauSimulator(n)
    simulator.run_circuit(circuit)
    for generator in generators:
        assert simulator.is_stabilized_by(generator)
