"""Tests for the commit-over-commit bench trend gate."""

import json

import pytest

from repro.cli import main
from repro.evaluation.trend import (
    compare_documents,
    compare_paths,
    format_trend,
    format_trend_markdown,
    save_trend,
)


def _cell(
    name,
    seconds=1.0,
    status="ok",
    horizons=3,
    certified=True,
    throughput=None,
    error=None,
):
    payload = {}
    if status == "ok":
        payload = {
            "found": certified,
            "optimal": certified,
            "num_horizons": horizons,
        }
        if throughput is not None:
            payload["sat_propagations_per_second"] = throughput
    return {
        "name": name,
        "suite": "smt",
        "status": status,
        "seconds": seconds,
        "payload": payload,
        "error": error,
        "attempts": 1,
    }


def _doc(cells, version=6):
    return {
        "version": version,
        "num_instances": len(cells),
        "num_ok": sum(1 for cell in cells if cell["status"] == "ok"),
        "results": cells,
    }


def test_identical_runs_pass_the_gate():
    doc = _doc([_cell("smt/a"), _cell("smt/b", seconds=0.5)])
    report = compare_documents(doc, doc)
    assert report.ok
    assert report.regressions == []
    assert report.aggregate["cells_compared"] == 2
    assert report.aggregate["cells_certified"] == 2
    assert report.aggregate["seconds_ratio"] == pytest.approx(1.0)


def test_doubled_wall_clock_on_a_certified_cell_trips_the_gate():
    old = _doc([_cell("smt/a", seconds=1.0)])
    new = _doc([_cell("smt/a", seconds=2.0)])
    report = compare_documents(old, new)
    assert not report.ok
    assert any("wall-clock" in message for message in report.regressions)
    assert report.cells[0].seconds_ratio == pytest.approx(2.0)


def test_wall_clock_growth_within_the_threshold_passes():
    old = _doc([_cell("smt/a", seconds=1.0)])
    new = _doc([_cell("smt/a", seconds=1.2)])
    assert compare_documents(old, new, wall_clock_threshold=0.25).ok
    assert not compare_documents(old, new, wall_clock_threshold=0.1).ok


def test_min_seconds_floor_filters_noise_on_near_instant_cells():
    old = _doc([_cell("smt/a", seconds=0.01)])
    new = _doc([_cell("smt/a", seconds=0.03)])  # 3x, but both < 50ms
    assert compare_documents(old, new).ok
    # The floor compares against the slower of the two runs, so a cell
    # that *became* slow is still caught.
    slow = _doc([_cell("smt/a", seconds=0.5)])
    assert not compare_documents(old, slow).ok


def test_uncertified_cells_are_not_wall_clock_gated():
    old = _doc([_cell("smt/a", seconds=1.0, certified=False)])
    new = _doc([_cell("smt/a", seconds=10.0, certified=False)])
    report = compare_documents(old, new)
    assert report.ok
    assert report.aggregate["cells_certified"] == 0


def test_any_probe_count_increase_on_a_certified_cell_trips_the_gate():
    old = _doc([_cell("smt/a", seconds=0.001, horizons=2)])
    new = _doc([_cell("smt/a", seconds=0.001, horizons=3)])
    report = compare_documents(old, new)
    assert not report.ok
    assert any("probe count rose 2 -> 3" in m for m in report.regressions)
    # Fewer probes is an improvement, not a regression.
    assert compare_documents(new, old).ok


def test_ok_to_not_ok_status_change_trips_the_gate():
    old = _doc([_cell("smt/a")])
    new = _doc([_cell("smt/a", status="timeout", error="exceeded 1s")])
    report = compare_documents(old, new)
    assert not report.ok
    assert any("was ok, now timeout" in m for m in report.regressions)


def test_cooperative_deadline_cells_count_as_not_ok():
    """A schema-v7 SMT cell that degrades to ``termination: "deadline"``
    keeps ``status: "ok"`` (its payload is a valid best-effort answer), but
    the gate must treat it like a timeout: certifying within budget before
    and running out of time now is a regression."""
    old_cell = _cell("smt/a")
    old_cell["payload"]["termination"] = "certified"
    new_cell = _cell("smt/a", certified=False)
    new_cell["payload"]["termination"] = "deadline"
    report = compare_documents(_doc([old_cell], version=7), _doc([new_cell], version=7))
    assert not report.ok
    assert any("was ok, now deadline" in m for m in report.regressions)


def test_deadline_cells_in_both_runs_do_not_trip_the_gate():
    """deadline -> deadline is not an ok -> non-ok transition."""
    cells = []
    for _ in range(2):
        cell = _cell("smt/a", certified=False)
        cell["payload"]["termination"] = "deadline"
        cells.append(cell)
    report = compare_documents(_doc([cells[0]], version=7), _doc([cells[1]], version=7))
    assert report.ok


def test_missing_cells_trip_the_gate_unless_allowed():
    old = _doc([_cell("smt/a"), _cell("smt/b")])
    new = _doc([_cell("smt/a")])
    report = compare_documents(old, new)
    assert not report.ok
    assert report.missing == ["smt/b"]
    relaxed = compare_documents(old, new, allow_missing=True)
    assert relaxed.ok
    assert relaxed.aggregate["cells_missing"] == 1


def test_added_cells_are_informational():
    old = _doc([_cell("smt/a")])
    new = _doc([_cell("smt/a"), _cell("smt/new")])
    report = compare_documents(old, new)
    assert report.ok
    assert report.added == ["smt/new"]
    assert report.aggregate["cells_added"] == 1


def test_throughput_is_reported_but_never_gated():
    old = _doc([_cell("smt/a", throughput=2.0e6)])
    new = _doc([_cell("smt/a", throughput=1.0e6)])  # halved
    report = compare_documents(old, new)
    assert report.ok
    assert report.aggregate["throughput_ratio_mean"] == pytest.approx(0.5)


def test_pre_v5_documents_are_rejected():
    doc = _doc([_cell("smt/a")], version=4)
    with pytest.raises(ValueError, match="schema v4"):
        compare_documents(doc, _doc([_cell("smt/a")]))
    with pytest.raises(ValueError, match="requires v5"):
        compare_documents(_doc([_cell("smt/a")]), doc)


def test_disjoint_runs_are_rejected():
    with pytest.raises(ValueError, match="share no cells"):
        compare_documents(_doc([_cell("smt/a")]), _doc([_cell("smt/b")]))


def test_format_trend_flags_regressed_cells_and_truncates_clean_ones():
    old = _doc([_cell(f"smt/clean-{i}", seconds=0.001) for i in range(4)]
               + [_cell("smt/slow", seconds=1.0)])
    new = _doc([_cell(f"smt/clean-{i}", seconds=0.001) for i in range(4)]
               + [_cell("smt/slow", seconds=3.0)])
    report = compare_documents(old, new)
    text = format_trend(report, max_cells=2)
    assert "<< REGRESSED" in text
    assert "smt/slow" in text  # regressed cells always shown
    assert "unremarkable cell(s) not shown" in text
    assert "REGRESSIONS (1):" in text
    clean = format_trend(compare_documents(old, old))
    assert "no regressions: the trend gate passes" in clean


def test_format_trend_markdown_carries_the_verdict():
    old = _doc([_cell("smt/a", seconds=1.0, throughput=1e6)])
    good = format_trend_markdown(compare_documents(old, old))
    assert "## Bench trend gate" in good
    assert "✅ passes" in good
    bad = format_trend_markdown(
        compare_documents(old, _doc([_cell("smt/a", seconds=5.0)]))
    )
    assert "❌ **FAILS**" in bad
    assert "### Regressions" in bad


def test_save_trend_round_trip(tmp_path):
    old = _doc([_cell("smt/a", seconds=1.0)])
    new = _doc([_cell("smt/a", seconds=4.0)])
    report = compare_documents(old, new)
    path = tmp_path / "BENCH_TREND.json"
    save_trend(report, path)
    document = json.loads(path.read_text())
    assert document["ok"] is False
    assert document["regressions"] == report.regressions
    assert document["cells"][0]["name"] == "smt/a"
    assert document["thresholds"]["wall_clock_threshold"] == 0.25


def _write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(json.dumps(document))
    return str(path)


def test_bench_trend_cli_exits_nonzero_on_an_injected_2x_regression(
    tmp_path, capsys
):
    old = _write(tmp_path, "old.json", _doc([_cell("smt/a", seconds=1.0)]))
    new = _write(tmp_path, "new.json", _doc([_cell("smt/a", seconds=2.0)]))
    assert main(["bench-trend", old, old]) == 0
    assert main(["bench-trend", old, new]) == 1
    out = capsys.readouterr().out
    assert "no regressions" in out
    assert "REGRESSIONS" in out
    # A generous threshold waves the same delta through.
    assert main(["bench-trend", old, new, "--wall-clock-threshold", "4.0"]) == 0


def test_bench_trend_cli_writes_the_json_and_markdown_artifacts(tmp_path):
    old = _write(tmp_path, "old.json", _doc([_cell("smt/a", seconds=1.0)]))
    new = _write(tmp_path, "new.json", _doc([_cell("smt/a", seconds=3.0)]))
    trend_json = tmp_path / "BENCH_TREND.json"
    trend_md = tmp_path / "trend.md"
    assert main([
        "bench-trend", old, new,
        "--json", str(trend_json), "--markdown", str(trend_md),
    ]) == 1
    assert json.loads(trend_json.read_text())["ok"] is False
    assert "❌ **FAILS**" in trend_md.read_text()


def test_bench_trend_cli_rejects_old_schemas_and_missing_files(
    tmp_path, capsys
):
    v4 = _write(tmp_path, "v4.json", _doc([_cell("smt/a")], version=4))
    v6 = _write(tmp_path, "v6.json", _doc([_cell("smt/a")]))
    assert main(["bench-trend", v4, v6]) == 2
    assert "schema v4" in capsys.readouterr().err
    assert main(["bench-trend", v6, str(tmp_path / "nope.json")]) == 2


def test_bench_trend_cli_allow_missing_and_max_cells(tmp_path, capsys):
    old = _write(
        tmp_path, "old.json",
        _doc([_cell("smt/a", seconds=0.001), _cell("smt/b", seconds=0.001)]),
    )
    new = _write(tmp_path, "new.json", _doc([_cell("smt/a", seconds=0.001)]))
    assert main(["bench-trend", old, new]) == 1
    assert main(["bench-trend", old, new, "--allow-missing"]) == 0
    assert main([
        "bench-trend", old, old, "--max-cells", "1",
    ]) == 0
    assert "unremarkable cell(s) not shown" in capsys.readouterr().out


def test_compare_paths_matches_compare_documents(tmp_path):
    old_doc = _doc([_cell("smt/a", seconds=1.0)])
    new_doc = _doc([_cell("smt/a", seconds=1.1)])
    old = _write(tmp_path, "old.json", old_doc)
    new = _write(tmp_path, "new.json", new_doc)
    from_paths = compare_paths(old, new)
    from_docs = compare_documents(old_doc, new_doc)
    assert from_paths.to_dict() == from_docs.to_dict()
