"""Tests for the Table I / Figure 4 reproduction harness."""

import pytest

from repro.evaluation import (
    figure4_from_rows,
    format_figure4,
    format_table1,
    run_architecture_exploration,
    run_table1,
    run_table1_row,
)
from repro.evaluation.exploration import format_exploration
from repro.evaluation.figure4 import BASELINE_LAYOUT


@pytest.fixture(scope="module")
def small_rows():
    """Table I restricted to the three small codes (fast)."""
    return run_table1(codes=["steane", "surface", "shor"])


def test_row_structure(small_rows):
    row = small_rows[0]
    assert row.code == "steane"
    assert row.num_cz_gates == 9
    assert set(row.layouts) == {
        "(1) No Shielding",
        "(2) Bottom Storage",
        "(3) Double-Sided Storage",
    }
    for result in row.layouts.values():
        assert result.num_rydberg_stages > 0
        assert result.execution_time_ms > 0
        assert 0 < result.asp <= 1


def test_shielding_improves_asp(small_rows):
    for row in small_rows:
        baseline = row.layouts[BASELINE_LAYOUT].asp
        for name, result in row.layouts.items():
            if name == BASELINE_LAYOUT:
                continue
            assert result.asp > baseline


def test_unshielded_idle_only_on_layout1(small_rows):
    for row in small_rows:
        assert row.layouts[BASELINE_LAYOUT].unshielded_idle > 0
        assert row.layouts["(2) Bottom Storage"].unshielded_idle == 0
        assert row.layouts["(3) Double-Sided Storage"].unshielded_idle == 0


def test_format_table1(small_rows):
    text = format_table1(small_rows)
    assert "Steane" in text
    assert "No Shielding" in text
    assert "ASP" in text


def test_figure4_bars(small_rows):
    bars = figure4_from_rows(small_rows)
    # Two bars (layouts 2 and 3) per code.
    assert len(bars) == 2 * len(small_rows)
    assert all(bar.delta_asp > 0 for bar in bars)
    text = format_figure4(bars)
    assert "dASP" in text


def test_figure4_requires_baseline(small_rows):
    row = run_table1_row("steane")
    del row.layouts[BASELINE_LAYOUT]
    with pytest.raises(ValueError):
        figure4_from_rows([row])


def test_single_row_runner():
    row = run_table1_row("shor")
    assert row.num_qubits == 9
    assert row.num_cz_gates > 0


def test_exploration_runner():
    results = run_architecture_exploration("steane")
    names = {result.architecture for result in results}
    assert {"no shielding", "bottom storage", "double-sided storage"} <= names
    text = format_exploration(results)
    assert "Architecture" in text
