"""Tests for the parallel batch evaluation engine."""

import json

import pytest

from repro.evaluation.runner import (
    BenchInstance,
    SMT_STRATEGIES,
    build_suite,
    check_bisection_regression,
    execute_spec,
    format_batch,
    load_results,
    run_batch,
    smt_suite,
    strategy_horizons,
    table1_suite,
)


# --------------------------------------------------------------------------- #
# Suite construction
# --------------------------------------------------------------------------- #
def test_build_suite_shapes():
    smt = build_suite("smt")
    assert len(smt) == 4 * 2 * 4  # strategies x layouts x instances
    assert all(inst.suite == "smt" for inst in smt)
    table1 = build_suite("table1", codes=["steane"])
    assert len(table1) == 3  # three layouts
    exploration = build_suite("exploration", codes=["steane", "surface"])
    assert len(exploration) == 2
    everything = build_suite("all", codes=["steane"], strategies=["linear"])
    assert len(everything) == 8 + 3 + 1


def test_build_suite_unknown_name():
    with pytest.raises(ValueError):
        build_suite("nope")


def test_smt_suite_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        smt_suite(strategies=["simulated-annealing"])


def test_smt_suite_names_carry_the_strategy():
    suite = smt_suite(strategies=("bisection",), instances=["triangle"])
    assert [inst.name for inst in suite] == [
        "smt/bisection/none/triangle",
        "smt/bisection/bottom/triangle",
    ]


# --------------------------------------------------------------------------- #
# Spec execution
# --------------------------------------------------------------------------- #
def test_execute_table1_spec():
    instance = table1_suite(codes=["steane"])[0]
    payload = execute_spec(instance.spec)
    assert payload["code"] == "steane"
    assert payload["num_rydberg_stages"] > 0
    assert 0.0 < payload["asp"] <= 1.0
    json.dumps(payload)  # payloads must be JSON-serialisable


def test_execute_smt_spec_all_strategies_agree():
    instances = smt_suite(
        strategies=SMT_STRATEGIES,
        instances=["chain-2"],
        layout_kinds=("bottom",),
        time_limit=300,
    )
    payloads = [execute_spec(inst.spec) for inst in instances]
    assert all(p["found"] and p["optimal"] and p["validated"] for p in payloads)
    assert {p["num_stages"] for p in payloads} == {3}
    json.dumps(payloads)


def test_execute_smt_spec_records_search_trajectory():
    [instance] = smt_suite(
        strategies=("bisection",), instances=["chain-2"], layout_kinds=("bottom",)
    )
    payload = execute_spec(instance.spec)
    assert payload["strategy"] == "bisection"
    assert payload["lower_bound"] == 2
    assert payload["upper_bound"] >= payload["num_stages"] == 3
    assert payload["num_horizons"] == len(payload["stages_tried"])


# --------------------------------------------------------------------------- #
# Batch execution
# --------------------------------------------------------------------------- #
def _tiny_suite():
    return smt_suite(
        strategies=("linear",),
        instances=["single-gate", "disjoint-pairs"],
        layout_kinds=("none",),
        time_limit=300,
    )


def test_run_batch_serial_with_json_output(tmp_path):
    output = tmp_path / "results.json"
    results = run_batch(_tiny_suite(), jobs=1, output_path=output)
    assert [r.status for r in results] == ["ok", "ok"]
    assert all(r.seconds >= 0 for r in results)
    document = json.loads(output.read_text())
    assert document["num_instances"] == 2
    assert document["num_ok"] == 2
    assert document["version"] == 2
    reloaded = load_results(output)
    assert [r.name for r in reloaded] == [r.name for r in results]


def test_run_batch_parallel_matches_serial(tmp_path):
    suite = _tiny_suite()
    serial = run_batch(suite, jobs=1)
    parallel = run_batch(suite, jobs=2, output_path=tmp_path / "parallel.json")
    assert [r.name for r in parallel] == [r.name for r in serial]
    assert all(r.ok for r in parallel)
    for left, right in zip(serial, parallel):
        assert left.payload["num_stages"] == right.payload["num_stages"]


def test_run_batch_records_errors():
    broken = BenchInstance(name="broken", suite="smt", spec={"kind": "nonsense"})
    results = run_batch([broken], jobs=1)
    assert results[0].status == "error"
    assert "nonsense" in results[0].error
    assert "0/1 instances ok" in format_batch(results)


def test_format_batch_mentions_instances():
    results = run_batch(_tiny_suite(), jobs=1)
    text = format_batch(results)
    assert "single-gate" in text
    assert "2/2 instances ok" in text


# --------------------------------------------------------------------------- #
# Bench regression helpers (used by the CI bench-regression job)
# --------------------------------------------------------------------------- #
def test_check_bisection_regression_on_the_smoke_instance():
    linear = run_batch(
        smt_suite(
            strategies=("linear",), instances=["triangle"], layout_kinds=("bottom",)
        ),
        jobs=1,
    )
    bisection = run_batch(
        smt_suite(
            strategies=("bisection",), instances=["triangle"], layout_kinds=("bottom",)
        ),
        jobs=1,
    )
    linear_horizons, bisection_horizons = check_bisection_regression(linear, bisection)
    assert bisection_horizons < linear_horizons
    assert strategy_horizons(linear, "linear") == {("bottom", "triangle"): linear_horizons}


def test_check_bisection_regression_requires_the_instance():
    with pytest.raises(ValueError):
        check_bisection_regression([], [])
