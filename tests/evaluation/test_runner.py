"""Tests for the parallel batch evaluation engine."""

import json
import time

import pytest

from repro.evaluation.runner import (
    BenchInstance,
    BenchResult,
    SMT_STRATEGIES,
    build_suite,
    check_backend_agreement,
    check_bisection_regression,
    check_bounds_soundness,
    check_portfolio_regression,
    execute_spec,
    format_batch,
    load_results,
    race_to_first,
    run_batch,
    save_results,
    smt_suite,
    strategy_horizons,
    table1_suite,
)


# --------------------------------------------------------------------------- #
# Suite construction
# --------------------------------------------------------------------------- #
def test_build_suite_shapes():
    # 5 instances on the none/bottom layouts plus the 3 airborne-feasible
    # instances on the shielded storage-less pseudo-layout = 13 cells per
    # strategy.
    smt = build_suite("smt")
    assert len(smt) == 5 * (2 * 5 + 3)
    assert all(inst.suite == "smt" for inst in smt)
    table1 = build_suite("table1", codes=["steane"])
    assert len(table1) == 3  # three layouts
    exploration = build_suite("exploration", codes=["steane", "surface"])
    assert len(exploration) == 2
    everything = build_suite("all", codes=["steane"], strategies=["linear"])
    assert len(everything) == 13 + 3 + 1


def test_smt_suite_shielded_axis_only_pairs_feasible_instances():
    """The none-shielded pseudo-layout keeps only instances whose beams can
    keep every qubit busy; the spec forces the shielding override."""
    suite = smt_suite(strategies=("bisection",), layout_kinds=("none-shielded",))
    assert [inst.name for inst in suite] == [
        "smt/bisection/none-shielded/single-gate",
        "smt/bisection/none-shielded/disjoint-pairs",
        "smt/bisection/none-shielded/ring-4",
    ]
    for inst in suite:
        assert inst.spec["layout_kind"] == "none"
        assert inst.spec["layout_label"] == "none-shielded"
        assert inst.spec["shielding"] is True


def test_execute_smt_spec_shielded_storage_less_certifies_without_probes():
    [instance] = smt_suite(
        strategies=("bisection",),
        instances=["ring-4"],
        layout_kinds=("none-shielded",),
        time_limit=300,
    )
    payload = execute_spec(instance.spec)
    assert payload["layout"] == "none-shielded"
    assert payload["found"] and payload["optimal"] and payload["validated"]
    assert payload["stages_tried"] == []
    assert payload["upper_bound"] == payload["num_stages"] == 2
    assert payload["upper_bound_source"] == "structured-airborne"


def test_build_suite_unknown_name():
    with pytest.raises(ValueError):
        build_suite("nope")


def test_smt_suite_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        smt_suite(strategies=["simulated-annealing"])


def test_smt_suite_names_carry_the_strategy():
    suite = smt_suite(strategies=("bisection",), instances=["triangle"])
    assert [inst.name for inst in suite] == [
        "smt/bisection/none/triangle",
        "smt/bisection/bottom/triangle",
    ]


def test_smt_suite_fans_the_backend_axis():
    suite = smt_suite(
        strategies=("linear",),
        instances=["single-gate"],
        layout_kinds=("none",),
        backends=(None, "reference"),
    )
    # The default backend keeps the historical names; explicit backends are
    # prefixed so both runs coexist in one batch without name collisions.
    assert [inst.name for inst in suite] == [
        "smt/linear/none/single-gate",
        "smt/reference/linear/none/single-gate",
    ]
    assert suite[0].spec["sat_backend"] is None
    assert suite[1].spec["sat_backend"] == "reference"


def test_execute_smt_spec_records_the_backend():
    [default_inst, reference_inst] = smt_suite(
        strategies=("linear",),
        instances=["single-gate"],
        layout_kinds=("none",),
        time_limit=300,
        backends=(None, "reference"),
    )
    default_payload = execute_spec(default_inst.spec)
    reference_payload = execute_spec(reference_inst.spec)
    assert default_payload["sat_backend"] == "flat"
    assert reference_payload["sat_backend"] == "reference"
    assert default_payload["num_stages"] == reference_payload["num_stages"]
    assert check_backend_agreement([
        BenchResult("a", "smt", "ok", 0.1, default_payload)
    ], [
        BenchResult("b", "smt", "ok", 0.1, reference_payload)
    ]) == [("linear", "none", "single-gate")]


def test_check_backend_agreement_rejects_disagreements():
    def result(sat_backend, num_stages=3, optimal=True):
        return BenchResult(
            name="smt/linear/bottom/chain-2",
            suite="smt",
            status="ok",
            seconds=0.1,
            payload={
                "strategy": "linear",
                "sat_backend": sat_backend,
                "layout": "bottom",
                "instance": "chain-2",
                "found": True,
                "optimal": optimal,
                "num_stages": num_stages,
            },
        )

    with pytest.raises(ValueError, match="share no"):
        check_backend_agreement([result("flat")], [])
    with pytest.raises(ValueError, match="certified 4"):
        check_backend_agreement(
            [result("flat")], [result("dimacs-subprocess", num_stages=4)]
        )
    with pytest.raises(ValueError, match="failed to certify"):
        check_backend_agreement(
            [result("flat")], [result("dimacs-subprocess", optimal=False)]
        )
    with pytest.raises(ValueError, match="does not record"):
        check_backend_agreement([result("flat")], [result(None)])
    # A batch that fans several backends shadows all but one result per
    # cell; the check must refuse instead of comparing vacuously.
    with pytest.raises(ValueError, match="mixes SAT backends"):
        check_backend_agreement(
            [result("flat"), result("reference")], [result("dimacs-subprocess")]
        )


# --------------------------------------------------------------------------- #
# Spec execution
# --------------------------------------------------------------------------- #
def test_execute_table1_spec():
    instance = table1_suite(codes=["steane"])[0]
    payload = execute_spec(instance.spec)
    assert payload["code"] == "steane"
    assert payload["num_rydberg_stages"] > 0
    assert 0.0 < payload["asp"] <= 1.0
    json.dumps(payload)  # payloads must be JSON-serialisable


def test_execute_smt_spec_all_strategies_agree():
    instances = smt_suite(
        strategies=SMT_STRATEGIES,
        instances=["chain-2"],
        layout_kinds=("bottom",),
        time_limit=300,
    )
    payloads = [execute_spec(inst.spec) for inst in instances]
    assert all(p["found"] and p["optimal"] and p["validated"] for p in payloads)
    assert {p["num_stages"] for p in payloads} == {3}
    json.dumps(payloads)


def test_execute_smt_spec_records_search_trajectory():
    [instance] = smt_suite(
        strategies=("bisection",), instances=["chain-2"], layout_kinds=("bottom",)
    )
    payload = execute_spec(instance.spec)
    assert payload["strategy"] == "bisection"
    # The +T transfer certificate lifts the chain's analytic bound to the
    # optimum, so bisection certifies it without probing a single horizon.
    assert payload["lower_bound"] == 3
    assert payload["upper_bound"] >= payload["num_stages"] == 3
    assert payload["num_horizons"] == len(payload["stages_tried"])


# --------------------------------------------------------------------------- #
# Batch execution
# --------------------------------------------------------------------------- #
def _tiny_suite():
    return smt_suite(
        strategies=("linear",),
        instances=["single-gate", "disjoint-pairs"],
        layout_kinds=("none",),
        time_limit=300,
    )


def test_run_batch_serial_with_json_output(tmp_path):
    output = tmp_path / "results.json"
    results = run_batch(_tiny_suite(), jobs=1, output_path=output)
    assert [r.status for r in results] == ["ok", "ok"]
    assert all(r.seconds >= 0 for r in results)
    document = json.loads(output.read_text())
    assert document["num_instances"] == 2
    assert document["num_ok"] == 2
    assert document["version"] == 8
    reloaded = load_results(output)
    assert [r.name for r in reloaded] == [r.name for r in results]


def test_run_batch_parallel_matches_serial(tmp_path):
    suite = _tiny_suite()
    serial = run_batch(suite, jobs=1)
    parallel = run_batch(suite, jobs=2, output_path=tmp_path / "parallel.json")
    assert [r.name for r in parallel] == [r.name for r in serial]
    assert all(r.ok for r in parallel)
    for left, right in zip(serial, parallel):
        assert left.payload["num_stages"] == right.payload["num_stages"]


def test_run_batch_records_errors():
    broken = BenchInstance(name="broken", suite="smt", spec={"kind": "nonsense"})
    results = run_batch([broken], jobs=1)
    assert results[0].status == "error"
    assert "nonsense" in results[0].error
    assert "0/1 instances ok" in format_batch(results)


def test_format_batch_mentions_instances():
    results = run_batch(_tiny_suite(), jobs=1)
    text = format_batch(results)
    assert "single-gate" in text
    assert "2/2 instances ok" in text


# --------------------------------------------------------------------------- #
# Bench regression helpers (used by the CI bench-regression job)
# --------------------------------------------------------------------------- #
def test_check_bisection_regression_on_the_smoke_instances():
    """The CI gate's two cells: on the triangle both strategies ride the
    tightened certificates (bisection must not fall behind); on the ring
    the airborne witness closes the interval and bisection certifies with
    zero probes, strictly beating linear."""
    instances = ["triangle", "ring-4"]
    linear = run_batch(
        smt_suite(
            strategies=("linear",), instances=instances, layout_kinds=("bottom",)
        ),
        jobs=1,
    )
    bisection = run_batch(
        smt_suite(
            strategies=("bisection",), instances=instances, layout_kinds=("bottom",)
        ),
        jobs=1,
    )
    linear_horizons, bisection_horizons = check_bisection_regression(linear, bisection)
    assert bisection_horizons <= linear_horizons
    assert strategy_horizons(linear, "linear")[("bottom", "triangle")] == linear_horizons
    ring_linear, ring_bisection = check_bisection_regression(
        linear, bisection, instance="ring-4"
    )
    assert ring_bisection == 0
    assert ring_bisection < ring_linear


def test_check_bisection_regression_requires_the_instance():
    with pytest.raises(ValueError):
        check_bisection_regression([], [])


# --------------------------------------------------------------------------- #
# Racing primitive (the portfolio strategy's pool machinery)
# --------------------------------------------------------------------------- #
def _race_worker(task):
    """Module-level so it pickles for the process pool."""
    kind, value = task
    if kind == "sleep":
        time.sleep(value)
        return ("slept", value)
    if kind == "raise":
        raise RuntimeError(f"boom {value}")
    return ("value", value)


def test_race_to_first_fast_task_wins_and_losers_are_cancelled():
    tasks = [("sleep", 30.0), ("value", 42)]
    start = time.monotonic()
    outcome = race_to_first(_race_worker, tasks, jobs=2)
    assert time.monotonic() - start < 20  # nowhere near the sleeper's 30s
    assert outcome.winner_index == 1
    assert outcome.winner == ("value", 42)
    assert outcome.cancelled == [0]
    assert 1 in outcome.finished


def test_race_to_first_accept_predicate_filters_results():
    tasks = [("value", 1), ("value", 2), ("sleep", 30.0)]
    outcome = race_to_first(
        _race_worker,
        tasks,
        jobs=3,
        accept=lambda result: result[1] >= 2,
    )
    assert outcome.winner == ("value", 2)
    assert 2 in outcome.cancelled


def test_race_to_first_records_errors_and_keeps_racing():
    tasks = [("raise", 7), ("value", 5)]
    outcome = race_to_first(_race_worker, tasks, jobs=2)
    assert outcome.winner == ("value", 5)
    assert 0 not in outcome.finished
    # Drive the no-winner path so the error recording itself is observable
    # (the racing variant above may decide the race before task 0 fails).
    outcome = race_to_first(
        _race_worker, [("raise", 7)], jobs=1, accept=lambda result: False
    )
    assert outcome.winner_index is None
    assert "boom 7" in outcome.errors[0]
    assert outcome.finished == {}


def test_race_to_first_without_winner_returns_everything():
    tasks = [("value", 1), ("value", 2)]
    outcome = race_to_first(
        _race_worker, tasks, jobs=2, accept=lambda result: False
    )
    assert outcome.winner_index is None
    assert outcome.winner is None
    assert set(outcome.finished) == {0, 1}
    assert outcome.cancelled == []


# --------------------------------------------------------------------------- #
# Portfolio payloads and schema version gating
# --------------------------------------------------------------------------- #
def test_execute_smt_portfolio_spec_records_winner():
    [instance] = smt_suite(
        strategies=("portfolio",), instances=["chain-2"], layout_kinds=("bottom",)
    )
    payload = execute_spec(instance.spec)
    assert payload["strategy"] == "portfolio"
    assert payload["found"] and payload["optimal"]
    assert payload["num_stages"] == 3
    winner = payload["winner"]
    assert winner["strategy"] in {"bisection", "warmstart", "linear"}
    assert winner["mode"] in {"inline", "raced"}
    json.dumps(payload)  # payloads must stay JSON-serialisable


def _fake_smt_result(
    strategy, winner=None, num_stages=3, optimal=True, sat_backend="flat"
):
    payload = {
        "strategy": strategy,
        "sat_backend": sat_backend,
        "layout": "bottom",
        "instance": "chain-2",
        "found": True,
        "optimal": optimal,
        "num_stages": num_stages,
    }
    if winner is not None:
        payload["winner"] = winner
    return BenchResult(
        name=f"smt/{strategy}/bottom/chain-2",
        suite="smt",
        status="ok",
        seconds=0.1,
        payload=payload,
    )


#: Which schema-versioned payload keys survive each document version.  The
#: strip behaviour was previously asymmetric-by-accident (``winner`` and
#: ``sat_backend`` were gated by separate ad-hoc clauses); this table locks
#: the cumulative contract: a version keeps exactly the keys introduced at
#: or below it.
_SCHEMA_STRIP_TABLE = {
    2: {"winner": False, "sat_backend": False,
        "lower_bound_source": False, "upper_bound_source": False,
        "sat_propagations_per_second": False, "sat_chrono_backtracks": False,
        "sat_vivified_literals": False, "sat_subsumed_clauses": False,
        "termination": False, "backend_retries": False,
        "latency_p50_seconds": False, "latency_p99_seconds": False,
        "cache_hit_rate": False},
    3: {"winner": True, "sat_backend": False,
        "lower_bound_source": False, "upper_bound_source": False,
        "sat_propagations_per_second": False, "sat_chrono_backtracks": False,
        "sat_vivified_literals": False, "sat_subsumed_clauses": False,
        "termination": False, "backend_retries": False,
        "latency_p50_seconds": False, "latency_p99_seconds": False,
        "cache_hit_rate": False},
    4: {"winner": True, "sat_backend": True,
        "lower_bound_source": False, "upper_bound_source": False,
        "sat_propagations_per_second": False, "sat_chrono_backtracks": False,
        "sat_vivified_literals": False, "sat_subsumed_clauses": False,
        "termination": False, "backend_retries": False,
        "latency_p50_seconds": False, "latency_p99_seconds": False,
        "cache_hit_rate": False},
    5: {"winner": True, "sat_backend": True,
        "lower_bound_source": True, "upper_bound_source": True,
        "sat_propagations_per_second": False, "sat_chrono_backtracks": False,
        "sat_vivified_literals": False, "sat_subsumed_clauses": False,
        "termination": False, "backend_retries": False,
        "latency_p50_seconds": False, "latency_p99_seconds": False,
        "cache_hit_rate": False},
    6: {"winner": True, "sat_backend": True,
        "lower_bound_source": True, "upper_bound_source": True,
        "sat_propagations_per_second": True, "sat_chrono_backtracks": True,
        "sat_vivified_literals": True, "sat_subsumed_clauses": True,
        "termination": False, "backend_retries": False,
        "latency_p50_seconds": False, "latency_p99_seconds": False,
        "cache_hit_rate": False},
    7: {"winner": True, "sat_backend": True,
        "lower_bound_source": True, "upper_bound_source": True,
        "sat_propagations_per_second": True, "sat_chrono_backtracks": True,
        "sat_vivified_literals": True, "sat_subsumed_clauses": True,
        "termination": True, "backend_retries": True,
        "latency_p50_seconds": False, "latency_p99_seconds": False,
        "cache_hit_rate": False},
    8: {"winner": True, "sat_backend": True,
        "lower_bound_source": True, "upper_bound_source": True,
        "sat_propagations_per_second": True, "sat_chrono_backtracks": True,
        "sat_vivified_literals": True, "sat_subsumed_clauses": True,
        "termination": True, "backend_retries": True,
        "latency_p50_seconds": True, "latency_p99_seconds": True,
        "cache_hit_rate": True},
}


@pytest.mark.parametrize("version", sorted(_SCHEMA_STRIP_TABLE))
def test_save_results_version_gates_are_symmetric(version, tmp_path):
    """Table-driven lock of the schema down-conversion: every versioned key
    is stripped below its introduction version and kept from it onward."""
    results = [_fake_smt_result("portfolio", winner={"strategy": "bisection"})]
    results[0].payload["lower_bound_source"] = "clique+transfer"
    results[0].payload["upper_bound_source"] = "structured-airborne"
    results[0].payload["sat_propagations_per_second"] = 1.5e6
    results[0].payload["sat_chrono_backtracks"] = 12
    results[0].payload["sat_vivified_literals"] = 7
    results[0].payload["sat_subsumed_clauses"] = 3
    results[0].payload["termination"] = "certified"
    results[0].payload["backend_retries"] = 0
    results[0].payload["latency_p50_seconds"] = 0.02
    results[0].payload["latency_p99_seconds"] = 0.09
    results[0].payload["cache_hit_rate"] = 0.5
    path = tmp_path / f"v{version}.json"
    save_results(results, path, schema_version=version)
    document = json.loads(path.read_text())
    assert document["version"] == version
    payload = document["results"][0]["payload"]
    for key, kept in _SCHEMA_STRIP_TABLE[version].items():
        assert (key in payload) is kept, (version, key)
    # The v6 fleet fields follow the same contract at the entry and
    # document levels: attempts/shard/journal_digest exist from v6 only.
    entry = document["results"][0]
    assert ("attempts" in entry) is (version >= 6)
    assert ("shard" in document) is (version >= 6)
    assert ("journal_digest" in document) is (version >= 6)
    # Stripping happens on the serialised copy, not the live results.
    for key in _SCHEMA_STRIP_TABLE[version]:
        assert key in results[0].payload


def test_save_results_rejects_unknown_versions(tmp_path):
    with pytest.raises(ValueError):
        save_results(
            [_fake_smt_result("portfolio")], tmp_path / "v9.json", schema_version=9
        )


def test_check_portfolio_regression_accepts_matching_batches():
    baseline = [_fake_smt_result("bisection")]
    portfolio = [_fake_smt_result("portfolio", winner={"strategy": "warmstart"})]
    assert check_portfolio_regression(baseline, portfolio) == [("bottom", "chain-2")]


@pytest.mark.parametrize(
    "portfolio_kwargs, message",
    [
        ({"num_stages": 4, "winner": {"strategy": "linear"}}, "stages"),
        ({"optimal": False, "winner": {"strategy": "linear"}}, "certify"),
        ({}, "winner"),
    ],
)
def test_check_portfolio_regression_rejects_violations(portfolio_kwargs, message):
    baseline = [_fake_smt_result("bisection")]
    portfolio = [_fake_smt_result("portfolio", **portfolio_kwargs)]
    with pytest.raises(ValueError, match=message):
        check_portfolio_regression(baseline, portfolio)


def test_check_portfolio_regression_requires_shared_cells():
    with pytest.raises(ValueError):
        check_portfolio_regression([], [])


# --------------------------------------------------------------------------- #
# Bounds-soundness gate (used by the CI bench-regression job)
# --------------------------------------------------------------------------- #
def _bounds_payload(**overrides):
    payload = {
        "strategy": "bisection",
        "layout": "bottom",
        "instance": "triangle",
        "found": True,
        "optimal": True,
        "num_stages": 5,
        "lower_bound": 4,
        "upper_bound": 7,
        "lower_bound_source": "clique+transfer",
        "upper_bound_source": "structured-homes",
    }
    payload.update(overrides)
    return BenchResult(
        name="smt/bisection/bottom/triangle",
        suite="smt",
        status="ok",
        seconds=0.1,
        payload=payload,
    )


def test_check_bounds_soundness_accepts_a_real_smoke_batch():
    results = run_batch(
        smt_suite(
            strategies=("bisection",),
            instances=["triangle", "ring-4"],
            layout_kinds=("bottom", "none-shielded"),
        ),
        jobs=1,
    )
    assert check_bounds_soundness(results, expect_clique={"triangle": 3}) == 3


@pytest.mark.parametrize(
    "overrides, message",
    [
        ({"lower_bound": 6}, "unsound"),
        ({"upper_bound": 4}, "unsound"),
        ({"lower_bound_source": None}, "certificate source"),
        ({"upper_bound_source": None}, "witness source"),
        ({"lower_bound": 2}, "clique"),
    ],
)
def test_check_bounds_soundness_rejects_violations(overrides, message):
    with pytest.raises(ValueError, match=message):
        check_bounds_soundness(
            [_bounds_payload(**overrides)], expect_clique={"triangle": 3}
        )


def test_check_bounds_soundness_requires_certified_cells():
    with pytest.raises(ValueError, match="no certified"):
        check_bounds_soundness([_bounds_payload(optimal=False)])
