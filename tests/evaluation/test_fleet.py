"""Tests for the bench fleet: journal/resume, sharding, crash retry, teardown.

The crash/teardown tests inject faults through the runner's ``selftest``
spec kind, so real worker processes really die (``os._exit``), really
sleep, and really get terminated — no mocks.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.evaluation.journal import (
    BenchJournal,
    file_digest,
    load_journal,
    plan_resume,
    suite_digest,
)
from repro.evaluation.runner import (
    BenchInstance,
    build_suite,
    cell_shard,
    load_document,
    load_results,
    merge_documents,
    run_batch,
    save_results,
    shard_info,
    shard_suite,
    smt_suite,
)
from repro.cli import main


def _selftest(name, **spec):
    return BenchInstance(name=name, suite="selftest", spec={"kind": "selftest", **spec})


# --------------------------------------------------------------------------- #
# Deterministic sharding
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("count", [2, 3, 5])
def test_shards_are_disjoint_and_exhaustive_over_the_full_smoke_matrix(count):
    suite = build_suite("smt")  # the full strategy x layout x instance matrix
    shards = [shard_suite(suite, index, count) for index in range(count)]
    names = [inst.name for shard in shards for inst in shard]
    assert len(names) == len(set(names)), "shards overlap"
    assert sorted(names) == sorted(inst.name for inst in suite), "cells lost"
    # No shard may swallow the whole suite (the hash really spreads cells).
    assert all(len(shard) < len(suite) for shard in shards)


def test_shard_partition_is_stable_across_calls_and_pinned():
    suite = build_suite("smt")
    first = [inst.name for inst in shard_suite(suite, 0, 3)]
    second = [inst.name for inst in shard_suite(suite, 0, 3)]
    assert first == second
    # The partition function is part of the on-disk contract (committed
    # baselines and CI shard artifacts embed it); pin known values so an
    # accidental algorithm change fails loudly instead of silently
    # re-partitioning every fleet.
    assert [cell_shard("smt/linear/none/single-gate", n) for n in (2, 3, 5)] == [0, 0, 0]
    assert [cell_shard("smt/bisection/bottom/triangle", n) for n in (2, 3, 5)] == [0, 2, 3]


def test_shard_validation():
    suite = build_suite("smt")
    with pytest.raises(ValueError):
        shard_suite(suite, 2, 2)
    with pytest.raises(ValueError):
        shard_suite(suite, -1, 2)
    with pytest.raises(ValueError):
        cell_shard("x", 0)
    with pytest.raises(ValueError):
        shard_info(["a"], index=1, count=1)


# --------------------------------------------------------------------------- #
# Journal round trips
# --------------------------------------------------------------------------- #
def test_journal_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    with BenchJournal(path) as journal:
        journal.write_header(["a", "b"], shard={"index": 0, "count": 1})
        journal.record_start("a", 1)
        journal.record_done(
            "a", 1, {"name": "a", "suite": "s", "status": "ok", "seconds": 0.1,
                     "payload": {"x": 1}, "error": None, "attempts": 1}
        )
        journal.record_start("b", 1)  # crashes: no done event
    state = load_journal(path)
    assert state.cells == ["a", "b"]
    assert state.suite_digest == suite_digest(["a", "b"])
    assert state.shard == {"index": 0, "count": 1}
    assert state.attempts == {"a": 1, "b": 1}
    assert set(state.completed) == {"a"}
    assert state.crashed_cells() == ["b"]


def test_journal_tolerates_a_torn_final_line(tmp_path):
    path = tmp_path / "run.jsonl"
    with BenchJournal(path) as journal:
        journal.write_header(["a"], shard=None)
        journal.record_start("a", 1)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"event": "done", "cell": "a", "resu')  # SIGKILL mid-append
    state = load_journal(path)
    assert state.attempts == {"a": 1}
    assert state.completed == {}


def _entry(name, status, attempts=1, seconds=0.5):
    return {"name": name, "suite": "smt", "status": status, "seconds": seconds,
            "payload": {}, "error": None, "attempts": attempts}


def test_plan_resume_semantics(tmp_path):
    path = tmp_path / "run.jsonl"
    cells = ["ok-cell", "error-cell", "timeout-cell", "crashed-cell",
             "exhausted-cell", "fresh-cell"]
    with BenchJournal(path) as journal:
        journal.write_header(cells, shard=None)
        for name, status in (
            ("ok-cell", "ok"), ("error-cell", "error"), ("timeout-cell", "timeout"),
        ):
            journal.record_start(name, 1)
            journal.record_done(name, 1, _entry(name, status))
        journal.record_start("crashed-cell", 1)
        for attempt in (1, 2, 3):
            journal.record_start("exhausted-cell", attempt)
    plan = plan_resume(cells, load_journal(path), max_retries=2)
    # ok/error are terminal and carried; timeout/crashed re-queued with the
    # next attempt number; exhausted (3 starts, budget 1+2) force-failed;
    # fresh never ran.
    assert {cells[i] for i in plan.carried} == {"ok-cell", "error-cell",
                                                "exhausted-cell"}
    assert plan.carried[cells.index("exhausted-cell")]["status"] == "failed"
    assert "3 attempts" in plan.carried[cells.index("exhausted-cell")]["error"]
    assert sorted(plan.requeued) == ["crashed-cell", "timeout-cell"]
    assert plan.exhausted == ["exhausted-cell"]
    pending = {cells[i]: attempt for i, attempt in plan.pending}
    assert pending == {"timeout-cell": 2, "crashed-cell": 2, "fresh-cell": 1}


def test_plan_resume_rejects_a_foreign_journal(tmp_path):
    path = tmp_path / "run.jsonl"
    with BenchJournal(path) as journal:
        journal.write_header(["a", "b"], shard=None)
    with pytest.raises(ValueError, match="different suite"):
        plan_resume(["a", "c"], load_journal(path), max_retries=0)


# --------------------------------------------------------------------------- #
# Crash retry against real worker processes
# --------------------------------------------------------------------------- #
def test_crashed_worker_cell_is_retried_and_succeeds(tmp_path):
    marker = tmp_path / "crashed-once"
    journal_path = tmp_path / "run.jsonl"
    cells = [
        _selftest("selftest/flaky", op="crash-once", marker=str(marker)),
        _selftest("selftest/steady", op="ok", value=3),
    ]
    results = run_batch(cells, jobs=2, max_retries=1, journal_path=journal_path)
    by_name = {result.name: result for result in results}
    assert by_name["selftest/flaky"].status == "ok"
    assert by_name["selftest/flaky"].attempts == 2
    assert by_name["selftest/flaky"].payload == {"op": "crash-once", "survived": True}
    assert by_name["selftest/steady"].attempts == 1
    events = [json.loads(line) for line in journal_path.read_text().splitlines()]
    starts = [(e["cell"], e["attempt"]) for e in events if e["event"] == "start"]
    assert starts.count(("selftest/flaky", 1)) == 1
    assert starts.count(("selftest/flaky", 2)) == 1


def test_poisoned_cell_fails_after_max_retries_without_wedging_the_suite():
    cells = [
        _selftest("selftest/poisoned", op="crash", exit_code=41),
        _selftest("selftest/steady", op="ok"),
    ]
    results = run_batch(cells, jobs=2, max_retries=2)
    by_name = {result.name: result for result in results}
    assert by_name["selftest/poisoned"].status == "failed"
    assert by_name["selftest/poisoned"].attempts == 3
    assert "exit code 41" in by_name["selftest/poisoned"].error
    assert by_name["selftest/steady"].status == "ok"


def test_timed_out_worker_is_terminated_not_orphaned(tmp_path):
    pid_file = tmp_path / "sleeper.pid"
    cells = [_selftest("selftest/sleeper", op="sleep", seconds=300,
                       pid_file=str(pid_file))]
    start = time.monotonic()
    results = run_batch(cells, jobs=2, timeout=1.0)
    assert time.monotonic() - start < 60
    assert results[0].status == "timeout"
    _assert_pids_dead([int(pid_file.read_text())])


def _assert_pids_dead(pids, grace=10.0):
    deadline = time.monotonic() + grace
    remaining = list(pids)
    while remaining and time.monotonic() < deadline:
        remaining = [pid for pid in remaining if _alive(pid)]
        if remaining:
            time.sleep(0.1)
    assert not remaining, f"worker processes survived: {remaining}"


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - container quirk
        return True
    return True


# --------------------------------------------------------------------------- #
# Kill mid-suite, resume from the journal (the fleet's core property)
# --------------------------------------------------------------------------- #
_DRIVER = """
import sys
from repro.evaluation.runner import BenchInstance, run_batch, smt_suite

journal, pid_dir = sys.argv[1], sys.argv[2]
cells = smt_suite(
    strategies=("bisection",),
    instances=["single-gate", "chain-2", "triangle"],
    layout_kinds=("bottom",),
    time_limit=300,
)
for index in range(2):
    cells.append(BenchInstance(
        name=f"selftest/blocker-{index}",
        suite="selftest",
        spec={"kind": "selftest", "op": "sleep", "seconds": 600,
              "pid_file": f"{pid_dir}/blocker-{index}.pid"},
    ))
run_batch(cells, jobs=2, journal_path=journal)
"""


def _resume_suite(pid_dir, blocker_seconds):
    cells = smt_suite(
        strategies=("bisection",),
        instances=["single-gate", "chain-2", "triangle"],
        layout_kinds=("bottom",),
        time_limit=300,
    )
    for index in range(2):
        cells.append(BenchInstance(
            name=f"selftest/blocker-{index}",
            suite="selftest",
            spec={"kind": "selftest", "op": "sleep", "seconds": blocker_seconds,
                  "pid_file": f"{pid_dir}/resumed-{index}.pid"},
        ))
    return cells


def _launch_driver_and_interrupt(tmp_path):
    """Start the driver suite, SIGINT it mid-flight, return the journal.

    The interrupt is sent once both blockers have written their PID files:
    with two worker slots that implies every quick smt cell already
    completed (the blockers are queued last), so the kill lands exactly in
    the "some cells done, some in flight" state a resume must handle.
    """
    journal = tmp_path / "run.jsonl"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-c", _DRIVER, str(journal), str(tmp_path)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        pid_files = [tmp_path / f"blocker-{index}.pid" for index in range(2)]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if all(f.exists() and f.read_text() for f in pid_files):
                break
            if process.poll() is not None:  # pragma: no cover - diagnostic
                pytest.fail("driver exited before the blockers started")
            time.sleep(0.2)
        else:  # pragma: no cover - diagnostic path
            pytest.fail("blockers never started")
        os.kill(process.pid, signal.SIGINT)
        process.wait(timeout=60)
    finally:
        if process.poll() is None:  # pragma: no cover - defensive
            process.kill()
            process.wait(timeout=30)
    return journal


_TIMING_PAYLOAD_KEYS = (
    "solver_seconds",
    "sat_propagations_per_second",
    "sat_conflicts_per_second",
)


def test_resume_after_kill_yields_the_uninterrupted_payloads(tmp_path):
    journal = _launch_driver_and_interrupt(tmp_path)
    state = load_journal(journal)
    assert state.completed, "the interrupted run completed no cells"
    assert state.crashed_cells(), "the blockers should have been in flight"

    # Resume: same cell names, but the blockers collapse to instant sleeps
    # (resume identity is the cell name — the suite digest check passes).
    resumed = run_batch(
        _resume_suite(tmp_path, 0.01), jobs=2, journal_path=journal, resume=True
    )
    names = [result.name for result in resumed]
    assert len(names) == len(set(names)) == 5, "every cell exactly once"
    assert all(result.status == "ok" for result in resumed)

    # Cells completed before the kill were carried, not re-executed: the
    # journal holds exactly one start per completed smt cell.
    events = [json.loads(line) for line in journal.read_text().splitlines()]
    for cell in state.completed:
        starts = [e for e in events
                  if e["event"] == "start" and e["cell"] == cell]
        assert len(starts) == 1, f"{cell} was re-executed on resume"

    # The merged payloads match an uninterrupted run, modulo timing.
    uninterrupted = run_batch(_resume_suite(tmp_path, 0.01), jobs=1)
    for left, right in zip(resumed, uninterrupted):
        assert left.name == right.name
        left_payload = {k: v for k, v in left.payload.items()
                        if k not in _TIMING_PAYLOAD_KEYS}
        right_payload = {k: v for k, v in right.payload.items()
                         if k not in _TIMING_PAYLOAD_KEYS}
        assert left_payload == right_payload, left.name


def test_interrupted_run_leaves_no_worker_children_behind(tmp_path):
    _launch_driver_and_interrupt(tmp_path)
    pids = []
    for index in range(2):
        pid_file = tmp_path / f"blocker-{index}.pid"
        if pid_file.exists():
            pids.append(int(pid_file.read_text()))
    assert pids, "no blocker ever started — the interrupt came too early"
    _assert_pids_dead(pids)


def test_resume_requires_a_journal_path():
    with pytest.raises(ValueError, match="journal_path"):
        run_batch([_selftest("selftest/x", op="ok")], resume=True)


# --------------------------------------------------------------------------- #
# Schema v6 documents and shard merging
# --------------------------------------------------------------------------- #
def _shard_documents(tmp_path, count, cells=None):
    cells = cells if cells is not None else [
        _selftest(f"selftest/cell-{index}", op="ok", value=index)
        for index in range(7)
    ]
    names = [cell.name for cell in cells]
    paths = []
    for index in range(count):
        path = tmp_path / f"shard-{index}.json"
        run_batch(
            shard_suite(cells, index, count),
            jobs=1,
            output_path=path,
            shard=shard_info(names, index, count),
        )
        paths.append(path)
    return cells, paths


def test_document_records_shard_journal_digest_and_attempts(tmp_path):
    journal_path = tmp_path / "run.jsonl"
    output = tmp_path / "run.json"
    cells = [_selftest("selftest/a", op="ok")]
    run_batch(cells, jobs=1, journal_path=journal_path, output_path=output)
    document = load_document(output)
    assert document["version"] == 8
    assert document["shard"] == shard_info(["selftest/a"])
    assert document["journal_digest"] == file_digest(journal_path)
    assert document["results"][0]["attempts"] == 1
    # And the loader round-trips the new field.
    assert load_results(output)[0].attempts == 1


def test_save_results_v5_strips_the_fleet_fields(tmp_path):
    path = tmp_path / "v5.json"
    results = run_batch([_selftest("selftest/a", op="ok")], jobs=1)
    save_results(results, path, schema_version=5)
    document = load_document(path)
    assert document["version"] == 5
    assert "shard" not in document
    assert "journal_digest" not in document
    assert "attempts" not in document["results"][0]


def test_merge_shard_documents_reproduces_the_unsharded_cell_set(tmp_path):
    cells, paths = _shard_documents(tmp_path, 3)
    merged = merge_documents([load_document(path) for path in paths])
    assert merged["num_instances"] == len(cells)
    assert merged["num_ok"] == len(cells)
    assert sorted(e["name"] for e in merged["results"]) == sorted(
        cell.name for cell in cells
    )
    assert merged["shard"]["merged_from"] == 3
    assert merged["shard"]["suite_digest"] == suite_digest(
        [cell.name for cell in cells]
    )


def test_merge_rejects_missing_duplicated_and_corrupt_shards(tmp_path):
    _, paths = _shard_documents(tmp_path, 2)
    first = load_document(paths[0])
    second = load_document(paths[1])
    with pytest.raises(ValueError, match="missing or duplicated"):
        merge_documents([first])
    with pytest.raises(ValueError, match="missing or duplicated"):
        merge_documents([first, first])
    with pytest.raises(ValueError, match="more than one shard"):
        merge_documents([first, {**second,
                                 "results": second["results"] + first["results"][:1],
                                 "shard": second["shard"]}])
    # A cell on the wrong shard (renamed or mis-partitioned) is caught.
    wrong = json.loads(json.dumps(second))
    wrong["results"][0]["name"] = "selftest/not-in-the-suite"
    with pytest.raises(ValueError, match="hashes to shard|suite digest"):
        merge_documents([first, wrong])
    # Dropping a cell is caught as a coverage loss.
    short = json.loads(json.dumps(second))
    short["results"] = short["results"][1:]
    with pytest.raises(ValueError, match="missing"):
        merge_documents([first, short])
    # Pre-v6 documents cannot prove disjointness/exhaustiveness.
    with pytest.raises(ValueError, match="schema v6"):
        merge_documents([{**first, "version": 5}])


def test_merge_rejects_shards_of_different_suites(tmp_path):
    _, paths = _shard_documents(tmp_path, 2)
    (tmp_path / "other").mkdir()
    other_cells = [_selftest(f"selftest/other-{i}", op="ok") for i in range(3)]
    _, other_paths = _shard_documents(tmp_path / "other", 2, cells=other_cells)
    with pytest.raises(ValueError, match="disagree"):
        merge_documents([load_document(paths[0]), load_document(other_paths[1])])


# --------------------------------------------------------------------------- #
# CLI: bench --shard / --journal / --resume and bench-merge
# --------------------------------------------------------------------------- #
def test_bench_cli_shard_and_merge_reproduce_the_unsharded_suite(
    tmp_path, capsys
):
    common = ["bench", "--suite", "smt", "--strategy", "bisection",
              "--timeout", "300"]
    for index in range(2):
        assert main(common + [
            "--shard", f"{index}/2",
            "--journal", str(tmp_path / f"shard-{index}.jsonl"),
            "--output", str(tmp_path / f"shard-{index}.json"),
        ]) == 0
    assert main([
        "bench-merge",
        str(tmp_path / "shard-0.json"), str(tmp_path / "shard-1.json"),
        "--output", str(tmp_path / "merged.json"),
    ]) == 0
    text = capsys.readouterr().out
    assert "merged 2 shard(s): 13 cells (13 ok)" in text
    merged = load_document(tmp_path / "merged.json")
    unsharded = smt_suite(strategies=("bisection",))
    assert sorted(e["name"] for e in merged["results"]) == sorted(
        inst.name for inst in unsharded
    )


def test_bench_cli_rejects_a_malformed_shard(capsys):
    assert main(["bench", "--suite", "smt", "--shard", "two/three"]) == 2
    assert "--shard must be I/N" in capsys.readouterr().err
    assert main(["bench", "--suite", "smt", "--shard", "3/2"]) == 2


def test_bench_cli_resume_rejects_a_foreign_journal(tmp_path, capsys):
    journal = tmp_path / "foreign.jsonl"
    with BenchJournal(journal) as handle:
        handle.write_header(["some/other/suite"], shard=None)
    assert main([
        "bench", "--suite", "smt", "--strategy", "bisection",
        "--resume", str(journal),
    ]) == 2
    assert "different suite" in capsys.readouterr().err


def test_bench_merge_cli_reports_validation_failures(tmp_path, capsys):
    _, paths = _shard_documents(tmp_path, 2)
    assert main([
        "bench-merge", str(paths[0]), str(paths[0]),
        "--output", str(tmp_path / "merged.json"),
    ]) == 1
    assert "missing or duplicated" in capsys.readouterr().err
