"""Tests for the persistent warm worker pool (repro.evaluation.executor).

The pool is the shared substrate under the bench fleet and the scheduling
service, so its contract is pinned here directly: warm workers are reused
across tasks (no per-task fork), crashes are detected and the dead worker
replaced without losing the pool, overruns are terminated, and shutdown is
clean and idempotent.
"""

import time

import pytest

from repro.evaluation.executor import (
    TASK_CRASHED,
    TASK_ERROR,
    TASK_OK,
    TASK_TIMEOUT,
    WorkerPool,
)
from repro.evaluation.runner import (
    SMT_INSTANCES,
    BenchInstance,
    dedupe_instances,
    execute_spec,
    run_batch,
)


def _selftest(op, **extra):
    return {"kind": "selftest", "op": op, **extra}


def _drain(pool, count, deadline=60.0):
    """Poll until *count* outcomes arrive (bounded by *deadline* seconds)."""
    outcomes = []
    limit = time.monotonic() + deadline
    while len(outcomes) < count:
        assert time.monotonic() < limit, (
            f"only {len(outcomes)}/{count} outcomes before the deadline"
        )
        outcomes.extend(pool.poll(timeout=0.2))
    return outcomes


# --------------------------------------------------------------------------- #
# Basic lifecycle
# --------------------------------------------------------------------------- #
def test_pool_runs_tasks_and_reports_ok():
    with WorkerPool(2) as pool:
        first = pool.submit(execute_spec, _selftest("ok", value=1))
        second = pool.submit(execute_spec, _selftest("ok", value=2))
        outcomes = {o.task_id: o for o in _drain(pool, 2)}
    assert outcomes[first].status == TASK_OK
    assert outcomes[first].value["value"] == 1
    assert outcomes[second].value["value"] == 2
    assert all(o.worker_pid for o in outcomes.values())


def test_pool_reuses_warm_workers_across_tasks():
    # The whole point of the warm pool: consecutive tasks land on the same
    # long-lived process instead of paying a fork + re-import per task.
    with WorkerPool(1) as pool:
        pids = set()
        for index in range(4):
            pool.submit(execute_spec, _selftest("pid", value=index))
            (outcome,) = _drain(pool, 1)
            assert outcome.status == TASK_OK
            pids.add(outcome.value["pid"])
    assert len(pids) == 1


def test_pool_error_is_contained():
    with WorkerPool(1) as pool:
        pool.submit(execute_spec, _selftest("error", message="boom"))
        (outcome,) = _drain(pool, 1)
        assert outcome.status == TASK_ERROR
        assert "boom" in outcome.error
        # The worker survives an exception and takes the next task.
        pool.submit(execute_spec, _selftest("ok", value=7))
        (outcome,) = _drain(pool, 1)
        assert outcome.status == TASK_OK
    assert pool.stats()["worker_restarts"] == 0


def test_pool_detects_crash_and_restarts_worker():
    with WorkerPool(1) as pool:
        pool.submit(execute_spec, _selftest("crash", exit_code=41))
        (outcome,) = _drain(pool, 1)
        assert outcome.status == TASK_CRASHED
        assert outcome.exitcode == 41
        assert "crashed" in outcome.error
        # The replacement worker is live and serves the next task.
        pool.submit(execute_spec, _selftest("ok", value=9))
        (outcome,) = _drain(pool, 1)
        assert outcome.status == TASK_OK
        assert pool.stats()["worker_restarts"] == 1
        assert all(entry["alive"] for entry in pool.health())


def test_pool_terminates_overrunning_task():
    with WorkerPool(1) as pool:
        pool.submit(execute_spec, _selftest("sleep", seconds=300), timeout=0.5)
        (outcome,) = _drain(pool, 1)
        assert outcome.status == TASK_TIMEOUT
        assert "harness timeout" in outcome.error
        # The sleeper was terminated, not awaited: a fresh worker answers.
        pool.submit(execute_spec, _selftest("ok"))
        (outcome,) = _drain(pool, 1)
        assert outcome.status == TASK_OK
        assert pool.stats()["worker_restarts"] == 1


def test_pool_backlog_drains_beyond_worker_count():
    with WorkerPool(2) as pool:
        ids = [
            pool.submit(execute_spec, _selftest("ok", value=index))
            for index in range(6)
        ]
        outcomes = {o.task_id: o for o in _drain(pool, 6)}
    assert sorted(outcomes) == sorted(ids)
    assert all(o.status == TASK_OK for o in outcomes.values())
    assert pool.stats()["tasks_completed"] == 6


def test_pool_health_and_stats_shape():
    with WorkerPool(2, name="probe") as pool:
        health = pool.health()
        assert len(health) == 2
        for entry in health:
            assert entry["alive"] is True
            assert entry["busy"] is False
            assert entry["pid"]
        stats = pool.stats()
        assert stats["jobs"] == 2
        assert stats["workers_spawned"] == 2
        assert stats["busy"] == 0
        assert pool.idle_count() == 2


def test_pool_shutdown_is_idempotent():
    pool = WorkerPool(1)
    pool.submit(execute_spec, _selftest("ok"))
    _drain(pool, 1)
    pool.shutdown()
    pool.shutdown()  # second call must be a no-op
    assert all(not entry["alive"] for entry in pool.health())


# --------------------------------------------------------------------------- #
# Warm-pool amortisation through the bench runner (the satellite fix)
# --------------------------------------------------------------------------- #
def test_run_batch_reuses_workers_across_cells():
    # Regression for the per-cell cold-start: six cells on two workers
    # must report at most two distinct worker pids — the old runner forked
    # (and re-imported the solver stack in) a fresh process per cell.
    cells = [
        BenchInstance(
            name=f"selftest/pid-{index}",
            suite="selftest",
            spec=_selftest("pid", value=index),
        )
        for index in range(6)
    ]
    results = run_batch(cells, jobs=2)
    assert all(result.status == "ok" for result in results)
    pids = {result.payload["pid"] for result in results}
    assert 1 <= len(pids) <= 2


# --------------------------------------------------------------------------- #
# Canonical-hash bench dedup
# --------------------------------------------------------------------------- #
def _smt_cell(name, gates, num_qubits=4, strategy="bisection", **extra):
    from repro.evaluation.runner import REDUCED_LAYOUT_KWARGS

    return BenchInstance(
        name=name,
        suite="smt",
        spec={
            "kind": "smt",
            "instance": name,
            "num_qubits": num_qubits,
            "gates": [list(gate) for gate in gates],
            "layout_kind": "bottom",
            "layout_kwargs": dict(REDUCED_LAYOUT_KWARGS),
            "strategy": strategy,
            "time_limit": 60.0,
            **extra,
        },
    )


def test_dedupe_drops_isomorphic_smt_cells():
    _, ring = SMT_INSTANCES["ring-4"]
    relabeled = [(3, 1), (1, 2), (2, 0), (0, 3)]  # ring-4 under 0<->3 swap... still C4
    cells = [
        _smt_cell("smt/a", ring),
        _smt_cell("smt/b", relabeled),
        _smt_cell("smt/c", ring, strategy="linear"),  # different config: kept
    ]
    kept, dropped = dedupe_instances(cells)
    assert [cell.name for cell in kept] == ["smt/a", "smt/c"]
    assert dropped == {"smt/b": "smt/a"}


def test_dedupe_keeps_non_isomorphic_and_non_smt_cells():
    path = [(0, 1), (1, 2), (2, 3)]
    star = [(0, 1), (0, 2), (0, 3)]
    other = BenchInstance(name="selftest/x", suite="selftest", spec=_selftest("ok"))
    kept, dropped = dedupe_instances(
        [_smt_cell("smt/path", path), _smt_cell("smt/star", star), other]
    )
    assert [cell.name for cell in kept] == ["smt/path", "smt/star", "selftest/x"]
    assert dropped == {}


def test_dedupe_requires_matching_solver_configuration():
    _, triangle = SMT_INSTANCES["triangle"]
    cells = [
        _smt_cell("smt/t60", triangle, num_qubits=3, time_limit=60.0),
        _smt_cell("smt/t10", triangle, num_qubits=3, time_limit=10.0),
    ]
    kept, dropped = dedupe_instances(cells)
    assert len(kept) == 2 and dropped == {}


# --------------------------------------------------------------------------- #
# Submit after shutdown fails loudly, not silently
# --------------------------------------------------------------------------- #
def test_submit_after_shutdown_raises():
    pool = WorkerPool(1)
    pool.shutdown()
    with pytest.raises(ValueError, match="shut down"):
        pool.submit(execute_spec, _selftest("ok"))
