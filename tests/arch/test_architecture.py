"""Tests for the zoned architecture model and the evaluation layouts."""

import pytest

from repro.arch import (
    Position,
    Zone,
    ZoneKind,
    ZonedArchitecture,
    bottom_storage_layout,
    double_sided_storage_layout,
    evaluation_layouts,
    no_shielding_layout,
    reduced_layout,
)


# --------------------------------------------------------------------------- #
# Construction and validation
# --------------------------------------------------------------------------- #
def test_architecture_requires_entangling_zone():
    with pytest.raises(ValueError):
        ZonedArchitecture(
            name="bad",
            x_max=3,
            y_max=1,
            h_max=1,
            v_max=1,
            c_max=1,
            r_max=1,
            interaction_radius=2,
            zones=(Zone(ZoneKind.STORAGE, 0, 1),),
        )


def test_architecture_rejects_uncovered_rows():
    with pytest.raises(ValueError):
        ZonedArchitecture(
            name="bad",
            x_max=3,
            y_max=2,
            h_max=1,
            v_max=1,
            c_max=1,
            r_max=1,
            interaction_radius=2,
            zones=(Zone(ZoneKind.ENTANGLING, 0, 1),),
        )


def test_architecture_rejects_overlapping_zones():
    with pytest.raises(ValueError):
        ZonedArchitecture(
            name="bad",
            x_max=3,
            y_max=2,
            h_max=1,
            v_max=1,
            c_max=1,
            r_max=1,
            interaction_radius=2,
            zones=(
                Zone(ZoneKind.ENTANGLING, 0, 2),
                Zone(ZoneKind.STORAGE, 2, 2),
            ),
        )


def test_architecture_rejects_zone_outside_rows():
    with pytest.raises(ValueError):
        ZonedArchitecture(
            name="bad",
            x_max=3,
            y_max=1,
            h_max=1,
            v_max=1,
            c_max=1,
            r_max=1,
            interaction_radius=2,
            zones=(Zone(ZoneKind.ENTANGLING, 0, 3),),
        )


# --------------------------------------------------------------------------- #
# The evaluation layouts (Sec. V-A)
# --------------------------------------------------------------------------- #
def test_layouts_match_paper_extents():
    for layout in evaluation_layouts().values():
        assert layout.x_max == 7
        assert layout.y_max == 6
        assert layout.h_max == layout.v_max == 2
        assert layout.c_max == layout.r_max == 5
        assert layout.interaction_radius == 2
        assert layout.num_sites == 56
        assert layout.num_aod_columns == layout.num_aod_rows == 6


def test_layout1_entangling_bounds():
    layout = no_shielding_layout()
    assert layout.entangling_rows == (0, 6)
    assert not layout.has_storage


def test_layout2_entangling_bounds():
    layout = bottom_storage_layout()
    assert layout.entangling_rows == (2, 6)
    assert layout.storage_rows() == [0, 1]
    assert layout.has_storage


def test_layout3_entangling_bounds():
    layout = double_sided_storage_layout()
    assert layout.entangling_rows == (2, 4)
    assert layout.storage_rows() == [0, 1, 5, 6]
    assert len(layout.storage_zones) == 2


def test_zone_of_row_and_membership():
    layout = bottom_storage_layout()
    assert layout.zone_of_row(0).kind is ZoneKind.STORAGE
    assert layout.zone_of_row(4).kind is ZoneKind.ENTANGLING
    assert layout.in_entangling_zone(4)
    assert not layout.in_entangling_zone(1)
    with pytest.raises(ValueError):
        layout.zone_of_row(99)


def test_sites_in_zone():
    layout = bottom_storage_layout()
    storage_sites = layout.sites_in_zone(ZoneKind.STORAGE)
    assert len(storage_sites) == 16
    entangling_sites = layout.sites_in_zone(ZoneKind.ENTANGLING)
    assert len(entangling_sites) == 40


def test_contains_and_offsets():
    layout = no_shielding_layout()
    assert layout.contains(Position(0, 0))
    assert layout.contains(Position(7, 6, 2, -2))
    assert not layout.contains(Position(8, 0))
    assert not layout.contains(Position(0, 0, 3, 0))
    assert len(layout.offsets()) == 25


# --------------------------------------------------------------------------- #
# Physical geometry
# --------------------------------------------------------------------------- #
def test_site_spacing_in_micrometres():
    layout = no_shielding_layout()
    x0, _ = layout.physical_coordinates_um(Position(0, 0))
    x1, _ = layout.physical_coordinates_um(Position(1, 0))
    assert x1 - x0 == pytest.approx(14.0)
    x_off, _ = layout.physical_coordinates_um(Position(0, 0, 1, 0))
    assert x_off - x0 == pytest.approx(1.0)


def test_zone_separation_adds_extra_space():
    layout = bottom_storage_layout()
    _, y_storage = layout.physical_coordinates_um(Position(0, 1))
    _, y_entangling = layout.physical_coordinates_um(Position(0, 2))
    # Crossing the storage/entangling boundary is at least 20 um.
    assert y_entangling - y_storage == pytest.approx(20.0)
    _, y_next = layout.physical_coordinates_um(Position(0, 3))
    assert y_next - y_entangling == pytest.approx(14.0)


def test_distance_is_euclidean():
    layout = no_shielding_layout()
    distance = layout.distance_um(Position(0, 0), Position(3, 0))
    assert distance == pytest.approx(42.0)
    assert layout.distance_um(Position(2, 2), Position(2, 2)) == 0.0


def test_describe_mentions_zones():
    text = double_sided_storage_layout().describe()
    assert "entangling" in text
    assert "storage" in text


# --------------------------------------------------------------------------- #
# Reduced layouts for the exact backend
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["none", "bottom", "double"])
def test_reduced_layouts_are_valid(kind):
    layout = reduced_layout(kind)
    assert layout.entangling_zone is not None
    assert (layout.has_storage) == (kind != "none")


def test_reduced_layout_unknown_kind():
    with pytest.raises(ValueError):
        reduced_layout("sideways")
