"""Tests for zones and the hardware figures of merit."""

import dataclasses

import pytest

from repro.arch import DEFAULT_OPERATION_PARAMETERS, OperationParameters, Zone, ZoneKind


def test_zone_properties():
    zone = Zone(ZoneKind.STORAGE, 0, 1, name="bottom")
    assert zone.num_rows == 2
    assert zone.contains_row(0) and zone.contains_row(1)
    assert not zone.contains_row(2)
    assert "bottom" in str(zone)


def test_zone_validation():
    with pytest.raises(ValueError):
        Zone(ZoneKind.STORAGE, 3, 1)
    with pytest.raises(ValueError):
        Zone(ZoneKind.STORAGE, -1, 1)


def test_default_parameters_match_paper_table():
    params = DEFAULT_OPERATION_PARAMETERS
    # Values from Sec. V-A of the paper.
    assert params.cz_fidelity == 0.995
    assert params.rydberg_idle_fidelity == 0.998
    assert params.local_rz_fidelity == 0.999
    assert params.global_ry_fidelity == 0.9999
    assert params.transfer_fidelity == 0.999
    assert params.shuttling_fidelity == 1.0
    assert params.cz_duration_us == pytest.approx(0.27)
    assert params.local_rz_duration_us == pytest.approx(12.0)
    assert params.global_ry_duration_us == pytest.approx(1.0)
    assert params.transfer_duration_us == pytest.approx(200.0)
    assert params.shuttling_speed_us_per_um == pytest.approx(0.55)
    assert params.effective_coherence_time_us == pytest.approx(1e6)
    assert params.intra_site_spacing_um == pytest.approx(1.0)
    assert params.site_spacing_um == pytest.approx(14.0)
    assert params.zone_separation_um == pytest.approx(20.0)


def test_shuttling_duration_scales_with_distance():
    params = DEFAULT_OPERATION_PARAMETERS
    assert params.shuttling_duration_us(0.0) == 0.0
    assert params.shuttling_duration_us(10.0) == pytest.approx(5.5)


def test_parameter_validation():
    with pytest.raises(ValueError):
        OperationParameters(cz_fidelity=1.5)
    with pytest.raises(ValueError):
        OperationParameters(cz_fidelity=0.0)
    with pytest.raises(ValueError):
        OperationParameters(transfer_duration_us=-1.0)


def test_parameters_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        DEFAULT_OPERATION_PARAMETERS.cz_fidelity = 0.5
