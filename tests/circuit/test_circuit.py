"""Tests for the circuit IR: gates, circuits, QASM round-trips."""

import pytest

from repro.circuit import Circuit, Gate, GateKind


def test_gate_constructors():
    assert Gate.h(0).kind is GateKind.H
    assert Gate.cz(1, 2).qubits == (1, 2)
    assert Gate.cx(0, 3).kind is GateKind.CX
    assert str(Gate.cz(0, 1)) == "cz q0 q1"


def test_gate_arity_validation():
    with pytest.raises(ValueError):
        Gate(GateKind.H, (0, 1))
    with pytest.raises(ValueError):
        Gate(GateKind.CZ, (0,))


def test_gate_duplicate_and_negative_qubits():
    with pytest.raises(ValueError):
        Gate(GateKind.CZ, (1, 1))
    with pytest.raises(ValueError):
        Gate(GateKind.H, (-1,))


def test_gate_kind_properties():
    assert GateKind.CZ.num_qubits == 2
    assert GateKind.H.num_qubits == 1
    assert GateKind.CZ.is_diagonal
    assert not GateKind.H.is_diagonal


def test_circuit_append_and_count():
    circuit = Circuit(3)
    circuit.h(0).cz(0, 1).cz(1, 2).h(2)
    assert len(circuit) == 4
    assert circuit.count(GateKind.CZ) == 2
    assert circuit.count(GateKind.H) == 2
    assert circuit.cz_pairs == [(0, 1), (1, 2)]


def test_circuit_rejects_out_of_range_qubits():
    circuit = Circuit(2)
    with pytest.raises(ValueError):
        circuit.cz(0, 5)


def test_circuit_needs_positive_qubits():
    with pytest.raises(ValueError):
        Circuit(0)


def test_circuit_depth():
    circuit = Circuit(3)
    circuit.h(0).h(1).h(2)
    assert circuit.depth() == 1
    circuit.cz(0, 1)
    circuit.cz(1, 2)
    assert circuit.depth() == 3


def test_qasm_roundtrip():
    circuit = Circuit(3)
    circuit.h(0).cz(0, 1).s(1).cx(1, 2).sdg(2).x(0).z(1).y(2)
    text = circuit.to_qasm()
    parsed = Circuit.from_qasm(text)
    assert parsed.num_qubits == 3
    assert [g.kind for g in parsed] == [g.kind for g in circuit]
    assert [g.qubits for g in parsed] == [g.qubits for g in circuit]


def test_qasm_parse_errors():
    with pytest.raises(ValueError):
        Circuit.from_qasm("OPENQASM 2.0;\nh q[0];\n")  # no qreg
    with pytest.raises(ValueError):
        Circuit.from_qasm("qreg q[1];\nfoo q[0];\n")  # unknown gate
    with pytest.raises(ValueError):
        Circuit.from_qasm("qreg q[1];\nh q[0]\n")  # missing semicolon
