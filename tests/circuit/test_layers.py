"""Tests for CZ layering (edge colouring) and the structured prep circuit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import StatePrepCircuit, cz_layers, interaction_graph
from repro.circuit.gates import GateKind
from repro.circuit.layers import minimum_layer_count, optimal_cz_layers
from repro.qec.codes import available_codes, get_code
from repro.qec.state_prep import state_preparation_circuit


def test_interaction_graph_deduplicates():
    graph = interaction_graph([(0, 1), (1, 0), (1, 2)])
    assert graph.number_of_edges() == 2


def test_interaction_graph_rejects_self_loops():
    with pytest.raises(ValueError):
        interaction_graph([(2, 2)])


def test_layers_are_disjoint():
    pairs = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    layers = cz_layers(pairs)
    for layer in layers:
        qubits = [q for pair in layer for q in pair]
        assert len(qubits) == len(set(qubits))
    flattened = sorted(tuple(sorted(p)) for layer in layers for p in layer)
    assert flattened == sorted(set(tuple(sorted(p)) for p in pairs))


def test_empty_input_gives_no_layers():
    assert cz_layers([]) == []
    assert minimum_layer_count([]) == 0


def test_star_graph_needs_degree_layers():
    pairs = [(0, i) for i in range(1, 5)]
    layers = cz_layers(pairs)
    assert len(layers) == 4
    assert minimum_layer_count(pairs) == 4


def test_perfect_matching_single_layer():
    pairs = [(0, 1), (2, 3), (4, 5)]
    assert len(cz_layers(pairs)) == 1


@pytest.mark.parametrize("name", available_codes())
def test_layering_achieves_degree_bound_on_evaluation_codes(name):
    prep = state_preparation_circuit(get_code(name))
    layers = cz_layers(prep.cz_gates)
    lower_bound = minimum_layer_count(prep.cz_gates)
    assert lower_bound <= len(layers) <= lower_bound + 1


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_property_layering_partitions_edges(data):
    n = data.draw(st.integers(min_value=2, max_value=8))
    possible = [(a, b) for a in range(n) for b in range(a + 1, n)]
    pairs = [edge for edge in possible if data.draw(st.booleans())]
    layers = cz_layers(pairs)
    seen = [tuple(sorted(p)) for layer in layers for p in layer]
    assert sorted(seen) == sorted(set(tuple(sorted(p)) for p in pairs))
    for layer in layers:
        qubits = [q for pair in layer for q in pair]
        assert len(qubits) == len(set(qubits))
    if pairs:
        # Greedy colouring is only guaranteed to stay below 2*Delta - 1 ...
        assert len(layers) <= max(2 * minimum_layer_count(pairs) - 1, 1)
        # ... whereas the exact search achieves Vizing's bound.
        optimal = optimal_cz_layers(pairs)
        assert minimum_layer_count(pairs) <= len(optimal) <= minimum_layer_count(pairs) + 1
        for layer in optimal:
            qubits = [q for pair in layer for q in pair]
            assert len(qubits) == len(set(qubits))


def test_optimal_layers_on_cycle():
    # Odd cycle: chromatic index 3 (> Delta = 2).
    pairs = [(0, 1), (1, 2), (2, 0)]
    assert len(optimal_cz_layers(pairs)) == 3
    # Even cycle: chromatic index 2.
    pairs = [(0, 1), (1, 2), (2, 3), (3, 0)]
    assert len(optimal_cz_layers(pairs)) == 2


def test_optimal_layers_respects_max_layers():
    pairs = [(0, 1), (1, 2), (2, 0)]
    with pytest.raises(ValueError):
        optimal_cz_layers(pairs, max_layers=2)


def test_optimal_layers_empty():
    assert optimal_cz_layers([]) == []


@pytest.mark.parametrize("name", ["steane", "surface", "shor"])
def test_optimal_layers_on_small_codes(name):
    prep = state_preparation_circuit(get_code(name))
    layers = optimal_cz_layers(prep.cz_gates)
    assert len(layers) >= minimum_layer_count(prep.cz_gates)
    seen = sorted(p for layer in layers for p in layer)
    assert seen == sorted(prep.cz_gates)


# --------------------------------------------------------------------------- #
# StatePrepCircuit structure
# --------------------------------------------------------------------------- #
def test_state_prep_circuit_validation():
    with pytest.raises(ValueError):
        StatePrepCircuit(num_qubits=3, cz_gates=[(0, 0)])
    with pytest.raises(ValueError):
        StatePrepCircuit(num_qubits=3, cz_gates=[(0, 5)])
    with pytest.raises(ValueError):
        StatePrepCircuit(num_qubits=2, cz_gates=[], local_corrections={5: (GateKind.H,)})


def test_state_prep_circuit_normalises_pairs():
    prep = StatePrepCircuit(num_qubits=3, cz_gates=[(2, 0), (1, 2)])
    assert prep.cz_gates == [(0, 2), (1, 2)]
    assert prep.num_cz_gates == 2


def test_state_prep_to_circuit_and_back():
    prep = StatePrepCircuit(
        num_qubits=3,
        cz_gates=[(0, 1), (1, 2)],
        local_corrections={2: (GateKind.H,), 0: (GateKind.Z, GateKind.H)},
        name="demo",
    )
    flat = prep.to_circuit()
    assert flat.count(GateKind.H) == 3 + 2  # inits + corrections
    assert flat.count(GateKind.CZ) == 2
    recovered = StatePrepCircuit.from_circuit(flat, name="demo")
    assert recovered.cz_gates == prep.cz_gates
    assert recovered.local_corrections == prep.local_corrections


def test_state_prep_hadamard_qubits():
    prep = StatePrepCircuit(
        num_qubits=3,
        cz_gates=[(0, 1)],
        local_corrections={1: (GateKind.H,), 2: (GateKind.S, GateKind.H)},
    )
    assert prep.hadamard_qubits() == [1]
    assert prep.single_qubit_gate_count() == 3 + 3


def test_from_circuit_rejects_malformed():
    from repro.circuit import Circuit

    circuit = Circuit(2)
    circuit.h(0)  # missing H on qubit 1
    circuit.cz(0, 1)
    with pytest.raises(ValueError):
        StatePrepCircuit.from_circuit(circuit)
