#!/usr/bin/env python3
"""Quickstart: prepare the Steane code's logical |0> on a zoned architecture.

The example walks the full pipeline of the paper:

1. build a QEC code,
2. synthesise its state-preparation circuit (|+> inits, CZ graph-state
   edges, final Hadamards),
3. schedule the CZ gates on a zoned neutral-atom architecture,
4. validate the schedule against the architecture rules, and
5. score it with the execution-time model and the approximated success
   probability (ASP).
"""

from repro.arch import bottom_storage_layout
from repro.core import SchedulingProblem, StructuredScheduler, validate_schedule
from repro.metrics import approximate_success_probability
from repro.qec import steane_code
from repro.qec.state_prep import state_preparation_circuit
from repro.qec.verification import prepares_logical_zero


def main() -> None:
    # 1. The QEC code.
    code = steane_code()
    n, k, d = code.parameters()
    print(f"code: {code.name}  [[{n},{k},{d}]]")

    # 2. The state-preparation circuit (the paper's Fig. 1b structure).
    prep = state_preparation_circuit(code)
    print(f"preparation circuit: {prep.num_cz_gates} CZ gates, "
          f"{len(prep.local_corrections)} corrected qubits")
    assert prepares_logical_zero(prep, code), "circuit must prepare |0>_L"

    # 3. Schedule the CZ gates on the bottom-storage layout (Layout 2).
    architecture = bottom_storage_layout()
    print(architecture.describe())
    problem = SchedulingProblem.from_circuit(
        architecture, prep, metadata={"code": code.name}
    )
    print(f"problem: {problem.describe()}")
    schedule = StructuredScheduler().schedule(problem)

    # 4. Independent validation of every architecture rule.
    validate_schedule(schedule)
    print(f"schedule: {schedule.summary()}")

    # 5. Metrics.
    breakdown = approximate_success_probability(schedule, prep)
    print(f"execution time: {breakdown.timing.total_ms:.3f} ms")
    print(f"ASP: {breakdown.asp:.4f}")
    print("  CZ factor:           ", round(breakdown.cz_factor, 4))
    print("  Rydberg-idle factor: ", round(breakdown.rydberg_idle_factor, 4))
    print("  transfer factor:     ", round(breakdown.transfer_factor, 4))
    print("  decoherence factor:  ", round(breakdown.decoherence_factor, 4))


if __name__ == "__main__":
    main()
