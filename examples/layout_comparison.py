#!/usr/bin/env python3
"""Regenerate the paper's evaluation: Table I and Figure 4.

Runs every evaluation code (Steane, Surface, Shor, Hamming, Tetrahedral,
Honeycomb) on the three architecture layouts and prints

* a Table I-style layout comparison (scheduling time, #R, #T, execution
  time, ASP), and
* the Figure 4 bars (ASP difference of the shielded layouts vs. the
  no-shielding baseline).

Use ``--codes steane surface`` to restrict the run to specific codes.
"""

import argparse

from repro.evaluation import (
    figure4_from_rows,
    format_figure4,
    format_table1,
    run_table1,
)
from repro.qec import available_codes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--codes",
        nargs="*",
        choices=available_codes(),
        default=None,
        help="restrict the evaluation to these codes (default: all six)",
    )
    args = parser.parse_args()

    rows = run_table1(codes=args.codes)
    print("Table I — layout comparison")
    print(format_table1(rows))
    print()
    print("Figure 4 — ASP improvement over the no-shielding baseline")
    print(format_figure4(figure4_from_rows(rows)))


if __name__ == "__main__":
    main()
