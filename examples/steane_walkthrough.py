#!/usr/bin/env python3
"""Walk-through of the paper's running example (Figs. 1 and 2).

The paper's introduction uses the Steane code to contrast a single-zone
schedule (Fig. 1c-e), where the idle qubit q3 is hit by every Rydberg beam,
with a zoned schedule (Fig. 2), where idling qubits are shielded in the
storage zone at the cost of trap transfers.

This script reproduces the comparison quantitatively, and additionally runs
the *optimal* SMT backend on a small chained-CZ instance to show the exact
behaviour the paper describes: without a storage zone the instance fits into
two Rydberg stages, while the zoned architecture inserts a transfer stage to
shield the idle qubit.
"""

from repro.arch import bottom_storage_layout, no_shielding_layout, reduced_layout
from repro.core import (
    SchedulingProblem,
    SMTScheduler,
    StructuredScheduler,
    validate_schedule,
)
from repro.metrics import approximate_success_probability
from repro.qec import steane_code
from repro.qec.state_prep import state_preparation_circuit


def structured_comparison() -> None:
    """Full Steane code on the no-shielding vs. bottom-storage layouts."""
    code = steane_code()
    prep = state_preparation_circuit(code)
    print(f"=== {code.name}: {prep.num_cz_gates} CZ gates ===")
    for label, architecture in [
        ("no shielding (cf. Fig. 1)", no_shielding_layout()),
        ("bottom storage (cf. Fig. 2)", bottom_storage_layout()),
    ]:
        problem = SchedulingProblem.from_circuit(architecture, prep)
        schedule = StructuredScheduler().schedule(problem)
        validate_schedule(schedule, require_shielding=problem.shielding)
        breakdown = approximate_success_probability(schedule, prep)
        print(f"{label:<30} #R={schedule.num_rydberg_stages} "
              f"#T={schedule.num_transfer_stages} "
              f"idle-exposures={breakdown.unshielded_idle_count} "
              f"time={breakdown.timing.total_ms:.2f} ms ASP={breakdown.asp:.3f}")
    print()


def optimal_small_instance() -> None:
    """Exact SMT scheduling of a chained-CZ instance on a reduced architecture."""
    gates = [(0, 1), (1, 2)]
    print("=== optimal SMT backend on a 3-qubit chained-CZ instance ===")
    for kind in ("none", "bottom"):
        architecture = reduced_layout(kind, x_max=2, h_max=1, v_max=1, c_max=2, r_max=2)
        problem = SchedulingProblem.from_gates(architecture, 3, gates)
        scheduler = SMTScheduler(time_limit_per_instance=120, strategy="bisection")
        report = scheduler.schedule(problem)
        assert report.found, "the reduced instance must be solvable"
        schedule = report.schedule
        print(f"layout={kind:<7} minimal S={schedule.num_stages} "
              f"(#R={schedule.num_rydberg_stages}, #T={schedule.num_transfer_stages}), "
              f"optimal={report.optimal}, "
              f"bounds=[{report.lower_bound},{report.upper_bound}], "
              f"horizons={report.stages_tried}, "
              f"solver time={report.solver_seconds:.2f}s")
    print("-> the storage zone forces one extra (transfer) stage, exactly the")
    print("   shielding behaviour of Fig. 2 in the paper.")


def main() -> None:
    structured_comparison()
    optimal_small_instance()


if __name__ == "__main__":
    main()
