#!/usr/bin/env python3
"""Design-space exploration for future zoned architectures (Sec. V-C).

The paper highlights that the scheduling approach "provides valuable
insights for the design of future quantum devices".  This example sweeps a
small design space — the three evaluation layouts plus variants with fewer
AOD lines and narrower storage zones — for a chosen code and reports the
resulting execution time and ASP.
"""

import argparse
from dataclasses import replace

from repro.arch import (
    bottom_storage_layout,
    double_sided_storage_layout,
    no_shielding_layout,
)
from repro.evaluation.exploration import format_exploration, run_architecture_exploration
from repro.qec import available_codes


def design_space() -> dict:
    """The evaluation layouts plus AOD-budget variations."""
    designs = {
        "no shielding": no_shielding_layout(),
        "bottom storage": bottom_storage_layout(),
        "double-sided storage": double_sided_storage_layout(),
    }
    # Variations: a bottom-storage machine with fewer AOD lines (cheaper
    # hardware) and one with more offsets per site (denser sites).
    base = bottom_storage_layout()
    designs["bottom storage, 4 AOD lines"] = replace(base, name="bottom-4aod", c_max=3, r_max=3)
    designs["bottom storage, 8 AOD lines"] = replace(base, name="bottom-8aod", c_max=7, r_max=7)
    return designs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "code",
        nargs="?",
        choices=available_codes(),
        default="surface",
        help="code whose preparation circuit is explored (default: surface)",
    )
    args = parser.parse_args()

    results = run_architecture_exploration(args.code, designs=design_space())
    print(f"design-space exploration for code {args.code!r}")
    print(format_exploration(results))


if __name__ == "__main__":
    main()
